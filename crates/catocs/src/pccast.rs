//! Constant-metadata causal broadcast (`pccast`).
//!
//! This is the PC-broadcast design \[Nédelec, Molli, Mostéfaoui:
//! "Breaking the Scalability Barrier of Causal Broadcast"\] with
//! Almeida-style hybrid buffering \["Space-Optimal, Computation-Optimal
//! … Causal Delivery through Hybrid Buffering"\]: instead of stamping
//! every multicast with an N-wide vector clock (the §3.4 overhead the
//! paper criticizes, and what `cbcast` pays), each copy carries only a
//! constant-size `(epoch, forwarder, link_seq)` tag and rides a reliable
//! FIFO *link* of a sparse dissemination overlay.
//!
//! Causal safety comes from the dissemination discipline, not from
//! metadata:
//!
//! - every process forwards **every** message it delivers — its own and
//!   everyone else's, including repair-path deliveries — on each of its
//!   outgoing overlay links, in delivery order;
//! - links are FIFO (per-link sequence numbers, a per-link reorder
//!   buffer on the receive side) and reliable (cumulative per-link
//!   acknowledgements drive sender-side retransmission);
//! - therefore, by induction, when a copy of `m` surfaces at the head of
//!   an in-order link, every causal predecessor of `m` was either carried
//!   earlier on that same link (and consumed — delivered or recognized as
//!   a duplicate) or is already delivered here via another link. The
//!   head is deliverable on sight if it is the origin's next message.
//!
//! The overlay is a ring over the live member indices (degree ≤ 2), so
//! per-multicast traffic is `O(N)` copies of constant size — the same
//! copy count as cbcast's broadcast, with `O(1)` instead of `O(N)` bytes
//! of ordering metadata per copy. The receive path does `O(log L)` work
//! per event (a reorder-buffer probe) instead of vector comparisons —
//! the hybrid-buffering trade: buffer *messages* briefly per link instead
//! of carrying *control state* on every message.
//!
//! Two situations fall outside the fast path and reuse the `cbcast`
//! machinery as a repair bridge:
//!
//! - **Holes**: a link head that is *not* the origin's next message
//!   (possible only around view changes and garbage-collected skips)
//!   stalls its link — the cursor never advances past an unconsumable
//!   head — and the gap is chased via NACK. Retransmissions are served
//!   with **full** vector timestamps and delivered through the ordinary
//!   holdback queue, after which the stalled head resolves as a
//!   duplicate or becomes deliverable.
//! - **View changes**: links are epoch-tagged with the view id and reset
//!   at install. A fresh link cannot vouch for deliveries that predate
//!   it, so delivery from new-epoch links is barred until this member
//!   has delivered everything up to the flush cut (all of which is
//!   recoverable from the survivors — the virtual-synchrony contract).
//!
//! Stability, garbage collection, flush/freeze and the missing/NACK
//! machinery are shared with `cbcast` (tick-driven `AckGossip`; pccast
//! never piggybacks clocks on data). The buffered-bytes gauge charges
//! each retained message its constant wire tag, not a vector: the full
//! timestamp kept alongside for NACK repair is cold-path bookkeeping,
//! not hot-path wire state.

use crate::cbcast::{BlockedReport, LinkWait, LinkWaitStatus, WaitCause, WaitStatus};
use crate::group::{GroupConfig, MsgId};
use crate::holdback::{HoldbackQueue, Pending};
use crate::stability::StabilityTracker;
use crate::wire::{DataMsg, Delivery, Dest, EndpointStats, Out, VtWire, Wire};
use clocks::vector::VectorClock;
use simnet::obs::{ObsEvent, PhaseEdge, PhaseKind, ProbeHandle, SpanId, Stage, WaitKind};
use simnet::time::SimTime;
use std::collections::BTreeMap;

fn span_of(id: MsgId) -> SpanId {
    SpanId {
        origin: id.sender,
        seq: id.seq,
    }
}

/// Tracking for a message we know exists but have not received.
#[derive(Debug, Clone, Copy)]
struct Missing {
    referenced_by: usize,
    last_nack: SimTime,
}

/// One position of an incoming link's reorder buffer.
#[derive(Debug)]
enum LinkCopy<P> {
    /// A data copy, with its physical arrival time.
    Data(SimTime, DataMsg<P>),
    /// The forwarder garbage-collected this position's payload as stable;
    /// the id consumes like a duplicate once delivered here.
    Skip(MsgId),
}

/// Send side of one overlay link.
#[derive(Debug, Default)]
struct OutLink {
    /// Highest link sequence number used (1-based; 0 = nothing sent).
    next_seq: u64,
    /// ARQ window: unacknowledged `link_seq → MsgId`.
    log: BTreeMap<u64, MsgId>,
    /// Last time unacked entries were re-served (throttles resends).
    last_resend: SimTime,
}

/// Receive side of one overlay link.
#[derive(Debug, Default)]
struct InLink<P> {
    /// Highest consecutively consumed link sequence number.
    cursor: u64,
    /// Out-of-order (or stalled) copies, by link sequence.
    buf: BTreeMap<u64, LinkCopy<P>>,
}

impl<P> InLink<P> {
    fn new() -> Self {
        InLink {
            cursor: 0,
            buf: BTreeMap::new(),
        }
    }
}

/// The constant-metadata causal multicast endpoint for one group member.
///
/// Same shape as [`crate::cbcast::CbcastEndpoint`]: a pure state machine
/// fed the current time and wire messages, returning deliveries and
/// outbound messages, so the same harnesses, chaos campaigns and probes
/// drive either discipline.
#[derive(Debug)]
pub struct PccastEndpoint<P> {
    me: usize,
    n: usize,
    cfg: GroupConfig,
    /// Delivered clock — local bookkeeping only; never on the wire with
    /// data (that is the whole point).
    vt: VectorClock,
    /// Current view id; copies from other epochs are discarded (their
    /// links restart from sequence 1 after an install).
    epoch: u64,
    /// Send side of each outgoing overlay link, by peer member index.
    links_out: BTreeMap<usize, OutLink>,
    /// Receive side of each incoming overlay link, by peer member index.
    links_in: BTreeMap<usize, InLink<P>>,
    /// Repair path: full-timestamped retransmissions wait here under the
    /// ordinary cbcast deliverability rule.
    holdback: HoldbackQueue<P>,
    /// Unstable messages retained for retransmission, by id.
    buffer: BTreeMap<MsgId, DataMsg<P>>,
    stability: StabilityTracker,
    stability_dirty: bool,
    gc_frontier: VectorClock,
    missing: BTreeMap<MsgId, Missing>,
    alive: Vec<bool>,
    cut: VectorClock,
    /// Post-install delivery barrier: fast-path delivery from the fresh
    /// links is barred until `vt` dominates this (the flush cut at the
    /// last install), because a fresh link cannot vouch for causal
    /// predecessors delivered before it existed.
    barrier: VectorClock,
    barrier_met: bool,
    frozen: bool,
    /// When the current freeze began (None when not frozen) — the
    /// latency ledger splits install-time waits at this instant.
    frozen_since: Option<SimTime>,
    /// Set for the duration of the install-time drain: the freeze
    /// instant the just-ended flush began at.
    install_thaw: Option<SimTime>,
    probe: ProbeHandle,
    stats: EndpointStats,
}

impl<P: Clone> PccastEndpoint<P> {
    /// Creates the endpoint for member `me` of a group of `n`.
    pub fn new(me: usize, n: usize, cfg: GroupConfig) -> Self {
        assert!(me < n, "member index out of range");
        let holdback = HoldbackQueue::new(cfg.indexed_holdback, n);
        PccastEndpoint {
            me,
            n,
            cfg,
            vt: VectorClock::new(n),
            epoch: 1,
            links_out: BTreeMap::new(),
            links_in: BTreeMap::new(),
            holdback,
            buffer: BTreeMap::new(),
            stability: StabilityTracker::new(n),
            stability_dirty: false,
            gc_frontier: VectorClock::new(n),
            missing: BTreeMap::new(),
            alive: vec![true; n],
            cut: VectorClock::new(n),
            barrier: VectorClock::new(n),
            barrier_met: true,
            frozen: false,
            frozen_since: None,
            install_thaw: None,
            probe: ProbeHandle::none(),
            stats: EndpointStats::default(),
        }
    }

    /// Installs an observability probe (read-only; a probed run is
    /// byte-identical to an unprobed one).
    pub fn set_probe(&mut self, probe: ProbeHandle) {
        self.probe = probe;
    }

    /// Suspends all delivery until the next [`PccastEndpoint::on_view_install`]
    /// (flush blackout, same contract as cbcast). Link buffers and the
    /// holdback queue keep accumulating.
    pub fn freeze(&mut self, now: SimTime) {
        if !self.frozen {
            self.frozen_since = Some(now);
            self.probe.emit(|| ObsEvent::Phase {
                at: now,
                who: self.me,
                kind: PhaseKind::Flush,
                edge: PhaseEdge::Begin,
                note: format!("{} unstable buffered", self.buffer.len()),
            });
        }
        self.frozen = true;
    }

    /// Whether delivery is currently frozen by a flush in progress.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// This member's index.
    pub fn me(&self) -> usize {
        self.me
    }

    /// Group size.
    pub fn group_size(&self) -> usize {
        self.n
    }

    /// The delivered vector clock.
    pub fn clock(&self) -> &VectorClock {
        &self.vt
    }

    /// Endpoint statistics.
    pub fn stats(&self) -> &EndpointStats {
        &self.stats
    }

    /// The stability tracker.
    pub fn stability(&self) -> &StabilityTracker {
        &self.stability
    }

    /// Number of unstable messages currently buffered.
    pub fn buffered_len(&self) -> usize {
        self.buffer.len()
    }

    /// Current holdback-queue (repair path) length.
    pub fn holdback_len(&self) -> usize {
        self.holdback.len()
    }

    /// pccast has no delta decode chains, so nothing ever parks; the
    /// analogous gauge is [`PccastEndpoint::link_buffered_len`].
    pub fn parked_len(&self) -> usize {
        0
    }

    /// Copies sitting in the per-link reorder buffers (the hybrid-buffer
    /// depth).
    pub fn link_buffered_len(&self) -> usize {
        self.links_in.values().map(|l| l.buf.len()).sum()
    }

    /// Retransmits every unstable buffered message to the whole group
    /// with full timestamps — the flush step of a view change.
    pub fn flush_unstable(&mut self) -> Vec<Out<P>> {
        let mut out = Vec::new();
        for m in self.buffer.values() {
            let mut copy = m.clone();
            copy.retransmit = true;
            copy.make_full();
            let w = Wire::Data(copy);
            self.stats.control_bytes += w.overhead_bytes() as u64;
            out.push((Dest::All, w));
        }
        out
    }

    /// The current group-wide stable frontier.
    pub fn stable_frontier(&self) -> VectorClock {
        self.stability.stable_frontier()
    }

    /// Componentwise stability-horizon lag (same definition as cbcast).
    pub fn stability_lag(&self) -> u64 {
        let frontier = self.stability.stable_frontier();
        (0..self.n)
            .map(|s| self.vt.get(s).saturating_sub(frontier.get(s)))
            .sum()
    }

    /// Telemetry hook: instantaneous queue depths and buffering gauges.
    pub fn sample(&self, emit: &mut dyn FnMut(&str, f64)) {
        emit("pccast.holdback", self.holdback.len() as f64);
        emit("pccast.linkbuf", self.link_buffered_len() as f64);
        emit("pccast.buffered", self.buffer.len() as f64);
        emit(
            "pccast.buffered_bytes",
            self.stats.buffered_bytes_now as f64,
        );
        emit("pccast.stability_lag", self.stability_lag() as f64);
    }

    /// Blocked-on explanation, mirroring
    /// [`crate::cbcast::CbcastEndpoint::blocked_report`] for the repair
    /// path, plus the pccast fast path: data copies parked in a per-link
    /// reorder buffer report the link position they wait behind (gap
    /// awaiting retransmit, skip marker pending, or severed link), and a
    /// stalled link *head* reports the origin-FIFO predecessors the link
    /// could not vouch for.
    pub fn blocked_report(&self) -> Vec<BlockedReport> {
        let mut by_msg: BTreeMap<MsgId, BlockedReport> = BTreeMap::new();
        for p in self.holdback.pending() {
            let mut waits = Vec::new();
            for k in 0..self.n {
                let need = if k == p.msg.id.sender {
                    p.msg.id.seq.saturating_sub(1)
                } else {
                    p.msg.vt.get(k)
                };
                for seq in (self.vt.get(k) + 1)..=need {
                    let id = MsgId { sender: k, seq };
                    waits.push(WaitCause {
                        id,
                        status: self.classify_wait(id),
                    });
                }
            }
            by_msg.insert(
                p.msg.id,
                BlockedReport {
                    msg: p.msg.id,
                    arrived_at: p.arrived_at,
                    waits,
                    link_waits: Vec::new(),
                },
            );
        }
        for (&peer, link) in &self.links_in {
            let head = link.cursor + 1;
            for (&pos, copy) in &link.buf {
                let LinkCopy::Data(at, msg) = copy else {
                    continue;
                };
                if msg.id.seq <= self.vt.get(msg.id.sender) {
                    // A duplicate awaiting consumption, not a blocked one.
                    continue;
                }
                let entry = by_msg.entry(msg.id).or_insert_with(|| BlockedReport {
                    msg: msg.id,
                    arrived_at: *at,
                    waits: Vec::new(),
                    link_waits: Vec::new(),
                });
                if pos > head {
                    let status = if !self.alive[peer] {
                        LinkWaitStatus::Severed
                    } else if matches!(link.buf.get(&head), Some(LinkCopy::Skip(_))) {
                        LinkWaitStatus::SkipPending
                    } else {
                        LinkWaitStatus::Gap
                    };
                    entry.link_waits.push(LinkWait {
                        from: peer,
                        pos: head,
                        status,
                    });
                } else if entry.waits.is_empty() {
                    let o = msg.id.sender;
                    for seq in (self.vt.get(o) + 1)..msg.id.seq {
                        let id = MsgId { sender: o, seq };
                        entry.waits.push(WaitCause {
                            id,
                            status: self.classify_wait(id),
                        });
                    }
                }
            }
        }
        by_msg.into_values().collect()
    }

    fn classify_wait(&self, id: MsgId) -> WaitStatus {
        if self.holdback.peek(id) {
            WaitStatus::HeldHere
        } else if !self.alive[id.sender] && id.seq > self.cut.get(id.sender) {
            WaitStatus::NeverDeliverable {
                cut: self.cut.get(id.sender),
            }
        } else if let Some(m) = self.missing.get(&id) {
            WaitStatus::Chased {
                referenced_by: m.referenced_by,
            }
        } else {
            WaitStatus::Unknown
        }
    }

    /// Contributes this endpoint's live blocking edges to a wait-graph
    /// snapshot (read-only; see [`crate::waitgraph`]). Repair-path
    /// entries block on their causal predecessors exactly as in
    /// [`crate::cbcast::CbcastEndpoint::wait_edges`]; fast-path copies
    /// parked behind a link-reorder gap block on a
    /// [`crate::waitgraph::WaitNode::LinkSlot`] that the collector
    /// resolves against the sender side's ARQ log
    /// ([`Self::link_log_lookup`]).
    pub fn wait_edges(&self, out: &mut Vec<crate::waitgraph::WaitEdge>) {
        use crate::waitgraph::{WaitEdge, WaitNode};
        // Sorted for determinism; one edge per lagging sender (the first
        // gap), mirroring the cbcast rationale.
        let mut pending: Vec<_> = self.holdback.pending().collect();
        pending.sort_unstable_by_key(|p| p.msg.id);
        for p in pending {
            let from = WaitNode::Msg(p.msg.id);
            for k in 0..self.n {
                let need = if k == p.msg.id.sender {
                    p.msg.id.seq.saturating_sub(1)
                } else {
                    p.msg.vt.get(k)
                };
                if need > self.vt.get(k) {
                    let gap = MsgId {
                        sender: k,
                        seq: self.vt.get(k) + 1,
                    };
                    out.push(WaitEdge {
                        from,
                        to: WaitNode::Msg(gap),
                        who: self.me,
                        since: p.arrived_at,
                        reason: crate::cbcast::wait_reason(self.classify_wait(gap)),
                    });
                }
            }
            if self.frozen {
                out.push(WaitEdge {
                    from,
                    to: WaitNode::Proc(self.me),
                    who: self.me,
                    since: p.arrived_at,
                    reason: "delivery frozen by flush",
                });
            }
        }
        for (&peer, link) in &self.links_in {
            let head = link.cursor + 1;
            for (&pos, copy) in &link.buf {
                let LinkCopy::Data(at, msg) = copy else {
                    continue;
                };
                if msg.id.seq <= self.vt.get(msg.id.sender) {
                    continue;
                }
                let from = WaitNode::Msg(msg.id);
                if pos > head {
                    out.push(WaitEdge {
                        from,
                        to: WaitNode::LinkSlot {
                            to: self.me,
                            from: peer,
                            seq: head,
                        },
                        who: self.me,
                        since: *at,
                        reason: "link reorder gap",
                    });
                } else if self.frozen {
                    out.push(WaitEdge {
                        from,
                        to: WaitNode::Proc(self.me),
                        who: self.me,
                        since: *at,
                        reason: "delivery frozen by flush",
                    });
                } else if !self.barrier_met {
                    out.push(WaitEdge {
                        from,
                        to: WaitNode::Proc(self.me),
                        who: self.me,
                        since: *at,
                        reason: "fast path barred until flush cut reached",
                    });
                } else {
                    let o = msg.id.sender;
                    let id = MsgId {
                        sender: o,
                        seq: self.vt.get(o) + 1,
                    };
                    if id != msg.id {
                        out.push(WaitEdge {
                            from,
                            to: WaitNode::Msg(id),
                            who: self.me,
                            since: *at,
                            reason: crate::cbcast::wait_reason(self.classify_wait(id)),
                        });
                    }
                }
            }
        }
    }

    /// Resolves a link-slot position against this sender's ARQ window:
    /// which message occupies sequence `seq` on the outgoing link to
    /// `to`. `None` once acked away (or never sent) — the wait-graph
    /// collector keeps the raw slot node in that case.
    pub fn link_log_lookup(&self, to: usize, seq: u64) -> Option<MsgId> {
        self.links_out.get(&to)?.log.get(&seq).copied()
    }

    /// The overlay neighbours of this member: predecessor and successor
    /// in the ring over live member indices. Degenerates gracefully: one
    /// neighbour in a pair, none when alone or evicted.
    fn neighbors(&self) -> Vec<usize> {
        let live: Vec<usize> = (0..self.n).filter(|&s| self.alive[s]).collect();
        let Some(k) = live.iter().position(|&s| s == self.me) else {
            return Vec::new();
        };
        let m = live.len();
        if m <= 1 {
            return Vec::new();
        }
        let prev = live[(k + m - 1) % m];
        let next = live[(k + 1) % m];
        if prev == next {
            vec![next]
        } else {
            vec![prev, next]
        }
    }

    /// Forwards a delivered message on every outgoing overlay link with a
    /// fresh per-link sequence tag. This is the flooding rule the whole
    /// discipline rests on: *every* delivery goes out on *every* link, in
    /// delivery order. `origin` marks the sender's own multicast, whose
    /// first copy is charged to `data_overhead_bytes` (the analogue of
    /// cbcast charging its single broadcast wire once); all other copies
    /// are dissemination cost and charged to `control_bytes`.
    fn forward(&mut self, msg: &DataMsg<P>, out: &mut Vec<Out<P>>, origin: bool) {
        let mut first = origin;
        for nb in self.neighbors() {
            let link = self.links_out.entry(nb).or_default();
            link.next_seq += 1;
            let seq = link.next_seq;
            link.log.insert(seq, msg.id);
            let mut copy = msg.clone();
            copy.vt_wire = VtWire::Pc {
                epoch: self.epoch,
                from: self.me,
                link_seq: seq,
            };
            copy.retransmit = false;
            copy.appended.clear();
            let w = Wire::Data(copy);
            let bytes = w.overhead_bytes() as u64;
            if first {
                self.stats.data_overhead_bytes += bytes;
                first = false;
            } else {
                self.stats.control_bytes += bytes;
            }
            out.push((Dest::One(nb), w));
        }
        if first {
            // No live neighbours (singleton view): still charge the send
            // its constant tag so bytes/msg stays meaningful.
            self.stats.data_overhead_bytes += (12 + 20 + 1) as u64;
        }
    }

    /// Applies an installed view. Same contract as cbcast's, plus the
    /// pccast specifics: the epoch becomes the installed view id, every
    /// link resets, and the fast path is barred behind the flush cut
    /// (fresh links cannot vouch for pre-install deliveries). Returns the
    /// thawed deliveries and their forwarded copies.
    pub fn on_view_install(
        &mut self,
        now: SimTime,
        view_id: u64,
        members: &[usize],
        cut: &VectorClock,
    ) -> (Vec<Delivery<P>>, Vec<Out<P>>) {
        if self.frozen {
            self.probe.emit(|| ObsEvent::Phase {
                at: now,
                who: self.me,
                kind: PhaseKind::Flush,
                edge: PhaseEdge::End,
                note: String::new(),
            });
        }
        self.probe.emit(|| ObsEvent::Phase {
            at: now,
            who: self.me,
            kind: PhaseKind::Install,
            edge: PhaseEdge::Point,
            note: format!("members {members:?} cut {cut:?}"),
        });
        self.cut.merge(cut);
        for s in 0..self.n {
            if !members.contains(&s) && self.alive[s] {
                self.alive[s] = false;
                self.holdback.purge_sender(s, self.cut.get(s));
                for seq in (self.vt.get(s) + 1)..=self.cut.get(s) {
                    let id = MsgId { sender: s, seq };
                    if !self.holdback.contains(id) {
                        self.missing.entry(id).or_insert(Missing {
                            referenced_by: s,
                            last_nack: SimTime::MAX,
                        });
                    }
                }
            }
        }
        let cut_snapshot = self.cut.clone();
        let alive = &self.alive;
        self.missing
            .retain(|id, _| alive[id.sender] || id.seq <= cut_snapshot.get(id.sender));
        // Epoch turnover: the overlay is rebuilt over the survivors and
        // every link restarts from sequence 1. In-flight old-epoch copies
        // die on arrival; anything undelivered from the old view comes
        // back through the flush retransmissions and the NACK machinery.
        self.epoch = view_id;
        self.links_out.clear();
        self.links_in.clear();
        self.barrier = self.cut.clone();
        self.barrier_met = self.check_barrier();
        self.stability.set_members(members);
        self.stability_dirty = true;
        self.stats.note_holdback(self.holdback.len() as u64);
        self.collect_garbage(now);
        self.frozen = false;
        self.install_thaw = self.frozen_since.take();
        let mut delivered = Vec::new();
        let mut out = Vec::new();
        self.drain(now, &mut delivered, &mut out);
        self.install_thaw = None;
        (delivered, out)
    }

    fn check_barrier(&self) -> bool {
        (0..self.n).all(|s| self.vt.get(s) >= self.barrier.get(s))
    }

    /// Multicasts `payload` to the group. The self-delivery is immediate;
    /// the outbound copies are the per-link forwards.
    pub fn multicast(&mut self, now: SimTime, payload: P) -> (Delivery<P>, Vec<Out<P>>) {
        let seq = self.vt.tick(self.me);
        self.probe.emit(|| ObsEvent::Span {
            at: now,
            who: self.me,
            span: SpanId {
                origin: self.me,
                seq,
            },
            stage: Stage::Send,
            note: String::new(),
        });
        self.holdback.note_delivered(self.me, seq);
        let id = MsgId {
            sender: self.me,
            seq,
        };
        // The buffered master copy keeps the full clock for NACK repair;
        // its wire tag is a placeholder (every outbound copy is re-tagged
        // per link, and retransmissions go out `make_full`).
        let msg = DataMsg {
            id,
            vt: self.vt.clone(),
            vt_wire: VtWire::Pc {
                epoch: self.epoch,
                from: self.me,
                link_seq: 0,
            },
            payload: payload.clone(),
            retransmit: false,
            appended: Vec::new(),
        };
        self.stats.sent += 1;
        self.stats.delivered += 1;
        self.stability_dirty |= self.stability.record_local_delivery(self.me, self.me, seq);
        self.buffer.insert(id, msg.clone());
        self.note_buffer();
        let mut out = Vec::new();
        self.forward(&msg, &mut out, true);
        let delivery = Delivery {
            id,
            payload,
            arrived_at: now,
            delivered_at: now,
            gseq: None,
            waited_for: Vec::new(),
        };
        (delivery, out)
    }

    /// Handles an incoming wire message. Returns app deliveries (in
    /// causal order) and outbound messages (forwarded copies, acks,
    /// NACKs, retransmits).
    pub fn on_wire(&mut self, now: SimTime, wire: Wire<P>) -> (Vec<Delivery<P>>, Vec<Out<P>>) {
        let mut out = Vec::new();
        let mut delivered = Vec::new();
        match wire {
            Wire::Data(msg) => {
                self.stats.data_received += 1;
                self.accept_data(now, msg, &mut out, &mut delivered);
            }
            Wire::PcAck { from, epoch, acked } => {
                self.on_pc_ack(now, from, epoch, acked, &mut out);
            }
            Wire::PcSkip {
                from,
                epoch,
                link_seq,
                id,
            } if epoch == self.epoch && from < self.n => {
                let link = self.links_in.entry(from).or_insert_with(InLink::new);
                if link_seq > link.cursor {
                    link.buf.entry(link_seq).or_insert(LinkCopy::Skip(id));
                }
                self.drain(now, &mut delivered, &mut out);
            }
            Wire::AckGossip { from, delivered: d } => {
                self.stability_dirty |= self.stability.update_row(from, &d);
                // Gossip reveals messages we never received — pccast's
                // only cross-link gap detector (data carries no clocks).
                for k in 0..self.n {
                    let hi = if self.alive[k] {
                        d.get(k)
                    } else {
                        d.get(k).min(self.cut.get(k))
                    };
                    for seq in (self.vt.get(k) + 1)..=hi {
                        let id = MsgId { sender: k, seq };
                        if !self.holdback.contains(id) {
                            self.missing.entry(id).or_insert(Missing {
                                referenced_by: from,
                                last_nack: SimTime::MAX,
                            });
                        }
                    }
                }
                self.collect_garbage(now);
            }
            Wire::Nack { from, want } => {
                for id in want {
                    if let Some(m) = self.buffer.get(&id) {
                        let mut copy = m.clone();
                        copy.retransmit = true;
                        copy.make_full();
                        self.stats.retransmits_served += 1;
                        let w = Wire::Data(copy);
                        self.stats.control_bytes += w.overhead_bytes() as u64;
                        out.push((Dest::One(from), w));
                    }
                }
            }
            // Membership traffic is the composing endpoint's business.
            _ => {}
        }
        self.stats.holdback_work = self.holdback.work();
        (delivered, out)
    }

    /// Periodic maintenance: ack gossip (stability + gap detection),
    /// per-link cumulative acks (loss recovery), NACK retries.
    pub fn on_tick(&mut self, now: SimTime) -> Vec<Out<P>> {
        let mut out = Vec::new();
        let gossip = Wire::AckGossip {
            from: self.me,
            delivered: self.vt.clone(),
        };
        self.stats.acks_sent += 1;
        self.stats.control_bytes += gossip.overhead_bytes() as u64;
        out.push((Dest::All, gossip));
        // Cumulative per-link acks to the overlay neighbours: tell each
        // forwarder how far its link has been consumed, so it can GC its
        // ARQ window and re-serve the tail.
        for nb in self.neighbors() {
            let acked = self.links_in.get(&nb).map_or(0, |l| l.cursor);
            let w: Wire<P> = Wire::PcAck {
                from: self.me,
                epoch: self.epoch,
                acked,
            };
            self.stats.control_bytes += w.overhead_bytes() as u64;
            out.push((Dest::One(nb), w));
        }
        // Re-NACK overdue missing messages (repair path).
        let mut batch: Vec<MsgId> = Vec::new();
        for (&id, info) in self.missing.iter_mut() {
            let overdue = info.last_nack == SimTime::MAX
                || now.saturating_since(info.last_nack) >= self.cfg.nack_timeout;
            if overdue && batch.len() < self.cfg.max_nack_batch {
                batch.push(id);
                info.last_nack = now;
            }
        }
        if !batch.is_empty() {
            let w = Wire::Nack {
                from: self.me,
                want: batch,
            };
            self.stats.nacks_sent += 1;
            self.stats.control_bytes += w.overhead_bytes() as u64;
            out.push((Dest::All, w));
        }
        self.note_buffer();
        out
    }

    /// A neighbour reports its consumption cursor for our link: drop the
    /// acknowledged ARQ window and re-serve anything still outstanding
    /// (throttled), falling back to [`Wire::PcSkip`] for positions whose
    /// payload was garbage-collected as stable.
    fn on_pc_ack(
        &mut self,
        now: SimTime,
        from: usize,
        epoch: u64,
        acked: u64,
        out: &mut Vec<Out<P>>,
    ) {
        if epoch != self.epoch || from >= self.n {
            return;
        }
        let Some(link) = self.links_out.get_mut(&from) else {
            return;
        };
        link.log = link.log.split_off(&(acked + 1));
        let outstanding = link.log.len();
        self.probe.emit(|| ObsEvent::Phase {
            at: now,
            who: self.me,
            kind: PhaseKind::LinkAck,
            edge: PhaseEdge::Point,
            note: format!("p{from} acked {acked}, {outstanding} outstanding"),
        });
        let link = self.links_out.get_mut(&from).expect("link exists");
        if link.log.is_empty() {
            return;
        }
        if now.saturating_since(link.last_resend) < self.cfg.nack_timeout
            && link.last_resend != SimTime::ZERO
        {
            return;
        }
        link.last_resend = now;
        let resend: Vec<(u64, MsgId)> = link
            .log
            .iter()
            .take(self.cfg.max_nack_batch)
            .map(|(&s, &id)| (s, id))
            .collect();
        for (link_seq, id) in resend {
            let w = if let Some(m) = self.buffer.get(&id) {
                let mut copy = m.clone();
                copy.vt_wire = VtWire::Pc {
                    epoch: self.epoch,
                    from: self.me,
                    link_seq,
                };
                copy.retransmit = true;
                copy.appended.clear();
                self.stats.retransmits_served += 1;
                Wire::Data(copy)
            } else {
                // Stable and reclaimed: the receiver necessarily
                // delivered it (stability is known-delivered-everywhere),
                // so a skip marker keeps its link cursor moving.
                Wire::PcSkip {
                    from: self.me,
                    epoch: self.epoch,
                    link_seq,
                    id,
                }
            };
            self.stats.control_bytes += w.overhead_bytes() as u64;
            out.push((Dest::One(from), w));
        }
    }

    /// First stage of receiving a data copy: dispatch on the wire tag.
    /// Pc-tagged copies join their link's reorder buffer; full-stamped
    /// copies (flush/NACK retransmissions) go through the holdback repair
    /// path. Delta encodings never occur in pccast.
    fn accept_data(
        &mut self,
        now: SimTime,
        mut msg: DataMsg<P>,
        out: &mut Vec<Out<P>>,
        delivered: &mut Vec<Delivery<P>>,
    ) {
        let sender = msg.id.sender;
        if sender >= self.n {
            self.stats.ts_decode_errors += 1;
            return;
        }
        self.probe.emit(|| ObsEvent::Span {
            at: now,
            who: self.me,
            span: span_of(msg.id),
            stage: Stage::Wire,
            note: if msg.retransmit {
                "retransmit".to_string()
            } else {
                String::new()
            },
        });
        if !self.alive[sender] && msg.id.seq > self.cut.get(sender) {
            self.stats.rejected_removed += 1;
            self.probe.emit(|| ObsEvent::Span {
                at: now,
                who: self.me,
                span: span_of(msg.id),
                stage: Stage::Dropped,
                note: format!("removed sender beyond cut {}", self.cut.get(sender)),
            });
            return;
        }
        match msg.vt_wire.clone() {
            VtWire::Pc {
                epoch,
                from,
                link_seq,
            } => {
                if epoch != self.epoch || from >= self.n {
                    // A straggler from a previous view's links; whatever
                    // it carried is recovered via flush/NACK if needed.
                    self.probe.emit(|| ObsEvent::Span {
                        at: now,
                        who: self.me,
                        span: span_of(msg.id),
                        stage: Stage::Dropped,
                        note: format!("stale epoch {epoch} (at {})", self.epoch),
                    });
                    return;
                }
                let span = span_of(msg.id);
                let link = self.links_in.entry(from).or_insert_with(InLink::new);
                if link_seq > link.cursor {
                    let cursor = link.cursor;
                    let fresh = !link.buf.contains_key(&link_seq);
                    link.buf.entry(link_seq).or_insert(LinkCopy::Data(now, msg));
                    if fresh {
                        self.probe.emit(|| ObsEvent::Span {
                            at: now,
                            who: self.me,
                            span,
                            stage: Stage::ReorderEnter,
                            note: format!("link p{from} pos {link_seq}, cursor {cursor}"),
                        });
                    }
                } else {
                    self.stats.duplicates += 1;
                }
                self.drain(now, delivered, out);
            }
            VtWire::Full(bytes) => match VectorClock::decode(&bytes) {
                Some(vt) if vt.len() == self.n => {
                    debug_assert_eq!(vt, msg.vt, "wire timestamp must match in-memory vt");
                    msg.vt = vt;
                    self.on_repair_data(now, msg, out, delivered);
                }
                _ => {
                    self.stats.ts_decode_errors += 1;
                    self.probe.emit(|| ObsEvent::Span {
                        at: now,
                        who: self.me,
                        span: span_of(msg.id),
                        stage: Stage::Dropped,
                        note: "timestamp decode error".to_string(),
                    });
                }
            },
            VtWire::Delta(_) => {
                self.stats.ts_decode_errors += 1;
            }
        }
    }

    /// A full-timestamped repair copy: the cbcast receive path (dup
    /// check, missing registration from the carried clock, holdback).
    fn on_repair_data(
        &mut self,
        now: SimTime,
        msg: DataMsg<P>,
        out: &mut Vec<Out<P>>,
        delivered: &mut Vec<Delivery<P>>,
    ) {
        self.stats.holdback_events += 1;
        if msg.id.seq <= self.vt.get(msg.id.sender) || self.holdback.contains(msg.id) {
            self.stats.duplicates += 1;
            self.probe.emit(|| ObsEvent::Span {
                at: now,
                who: self.me,
                span: span_of(msg.id),
                stage: Stage::Dropped,
                note: "duplicate".to_string(),
            });
            self.collect_garbage(now);
            return;
        }
        self.missing.remove(&msg.id);
        self.register_missing(now, &msg, out);
        self.probe.emit(|| ObsEvent::Span {
            at: now,
            who: self.me,
            span: span_of(msg.id),
            stage: Stage::HoldbackEnter,
            note: "repair copy".to_string(),
        });
        self.holdback.insert(
            Pending {
                msg,
                arrived_at: now,
            },
            &self.vt,
        );
        self.stats.note_holdback(self.holdback.len() as u64);
        self.drain(now, delivered, out);
        self.collect_garbage(now);
    }

    /// Scans a repair copy's timestamp for messages neither delivered nor
    /// held, recording them as missing with an immediate NACK (only
    /// repair copies carry timestamps to scan).
    fn register_missing(&mut self, now: SimTime, msg: &DataMsg<P>, out: &mut Vec<Out<P>>) {
        let mut want = Vec::new();
        for k in 0..self.n {
            let known = self.vt.get(k);
            let referenced = if k == msg.id.sender {
                msg.id.seq.saturating_sub(1)
            } else {
                msg.vt.get(k)
            };
            let referenced = if self.alive[k] {
                referenced
            } else {
                referenced.min(self.cut.get(k))
            };
            for seq in (known + 1)..=referenced {
                let id = MsgId { sender: k, seq };
                if !self.missing.contains_key(&id) && !self.holdback.contains(id) {
                    self.missing.insert(
                        id,
                        Missing {
                            referenced_by: msg.id.sender,
                            last_nack: now,
                        },
                    );
                    if want.len() < self.cfg.max_nack_batch {
                        want.push(id);
                    }
                }
            }
        }
        if !want.is_empty() {
            let w = Wire::Nack {
                from: self.me,
                want,
            };
            self.stats.nacks_sent += 1;
            self.stats.control_bytes += w.overhead_bytes() as u64;
            out.push((Dest::One(msg.id.sender), w));
        }
    }

    /// Drives both delivery paths to a fixed point: consume in-order link
    /// heads (fast path) and drain the holdback queue (repair path),
    /// alternating until neither makes progress — a repair delivery can
    /// unstall a link head and vice versa.
    fn drain(&mut self, now: SimTime, delivered: &mut Vec<Delivery<P>>, out: &mut Vec<Out<P>>) {
        if self.frozen {
            self.stats.note_holdback(self.holdback.len() as u64);
            return;
        }
        loop {
            let links = self.drain_links(now, delivered, out);
            let repair = self.drain_holdback(now, delivered, out);
            if !links && !repair {
                break;
            }
        }
        self.stats.note_holdback(self.holdback.len() as u64);
        self.note_buffer();
    }

    /// Consumes in-order link heads. Check-before-consume: the cursor
    /// never advances past a head that cannot be consumed (delivered,
    /// recognized as duplicate, or provably never-deliverable), so the
    /// link's causal vouching is preserved. Returns whether anything was
    /// consumed.
    fn drain_links(
        &mut self,
        now: SimTime,
        delivered: &mut Vec<Delivery<P>>,
        out: &mut Vec<Out<P>>,
    ) -> bool {
        let mut any = false;
        let peers: Vec<usize> = self.links_in.keys().copied().collect();
        for peer in peers {
            loop {
                let link = self.links_in.get_mut(&peer).expect("link exists");
                let next = link.cursor + 1;
                let head_action = match link.buf.get(&next) {
                    None => HeadAction::Stop,
                    Some(LinkCopy::Skip(id)) => {
                        if id.seq <= self.vt.get(id.sender)
                            || (!self.alive[id.sender] && id.seq > self.cut.get(id.sender))
                        {
                            HeadAction::Consume
                        } else {
                            HeadAction::Chase(*id)
                        }
                    }
                    Some(LinkCopy::Data(_, msg)) => {
                        let o = msg.id.sender;
                        let s = msg.id.seq;
                        if s <= self.vt.get(o) {
                            HeadAction::ConsumeDup
                        } else if !self.alive[o] && s > self.cut.get(o) {
                            HeadAction::Consume
                        } else if s == self.vt.get(o) + 1
                            && self.barrier_met
                            && !self.holdback.peek(msg.id)
                        {
                            // The holdback check keeps the two delivery
                            // paths from double-claiming one message: if a
                            // repair copy of this very id is already held,
                            // the repair path owns the delivery and this
                            // head resolves as a duplicate afterwards.
                            HeadAction::Deliver
                        } else {
                            HeadAction::Chase(MsgId {
                                sender: o,
                                seq: self.vt.get(o) + 1,
                            })
                        }
                    }
                };
                match head_action {
                    HeadAction::Stop => break,
                    HeadAction::Consume => {
                        let removed = link.buf.remove(&next);
                        link.cursor = next;
                        if let Some(LinkCopy::Skip(id)) = removed {
                            self.probe.emit(|| ObsEvent::Span {
                                at: now,
                                who: self.me,
                                span: span_of(id),
                                stage: Stage::SkipConsume,
                                note: format!("link p{peer} pos {next}"),
                            });
                        }
                        any = true;
                    }
                    HeadAction::ConsumeDup => {
                        link.buf.remove(&next);
                        link.cursor = next;
                        self.stats.duplicates += 1;
                        any = true;
                    }
                    HeadAction::Deliver => {
                        let Some(LinkCopy::Data(arrived_at, msg)) = link.buf.remove(&next) else {
                            unreachable!("head was just matched as data");
                        };
                        link.cursor = next;
                        self.deliver(now, arrived_at, msg, WaitKind::LinkReorder, delivered, out);
                        any = true;
                    }
                    HeadAction::Chase(id) => {
                        // Stall: the head waits for the repair path to
                        // advance the clock under it. Record the blocking
                        // gap so the tick NACK loop chases it — unless the
                        // holdback already holds the id (it is not missing;
                        // it is queued behind its own predecessors).
                        if !self.holdback.peek(id) {
                            self.missing.entry(id).or_insert(Missing {
                                referenced_by: peer,
                                last_nack: SimTime::MAX,
                            });
                        }
                        break;
                    }
                }
            }
        }
        any
    }

    /// Drains the repair path (ordinary cbcast deliverability on full
    /// timestamps). Returns whether anything was delivered.
    fn drain_holdback(
        &mut self,
        now: SimTime,
        delivered: &mut Vec<Delivery<P>>,
        out: &mut Vec<Out<P>>,
    ) -> bool {
        let mut any = false;
        while let Some(pending) = self.holdback.pop_ready(&self.vt) {
            let arrived_at = pending.arrived_at;
            self.deliver(
                now,
                arrived_at,
                pending.msg,
                WaitKind::NackRepair,
                delivered,
                out,
            );
            any = true;
        }
        any
    }

    /// The single delivery point for both paths: advance the clock,
    /// record stability, retain for retransmission, and — crucially —
    /// forward the message on every outgoing link.
    fn deliver(
        &mut self,
        now: SimTime,
        arrived_at: SimTime,
        msg: DataMsg<P>,
        wait_kind: WaitKind,
        delivered: &mut Vec<Delivery<P>>,
        out: &mut Vec<Out<P>>,
    ) {
        let sender = msg.id.sender;
        let seq = msg.id.seq;
        debug_assert_eq!(seq, self.vt.get(sender) + 1, "delivery must be FIFO");
        self.vt.set(sender, seq);
        self.holdback.note_delivered(sender, seq);
        self.stability_dirty |= self.stability.record_local_delivery(self.me, sender, seq);
        self.missing.remove(&msg.id);
        if !self.barrier_met {
            self.barrier_met = self.check_barrier();
        }
        let was_held = arrived_at < now;
        self.stats.delivered += 1;
        if was_held {
            self.stats.delivered_after_hold += 1;
            self.stats.hold_time_total += now.saturating_since(arrived_at);
            // Ledger attribution: a link-path delivery waited on its
            // per-link reorder cursor, a repair-path one on a NACK
            // retransmission. The install-time drain splits the interval
            // at the freeze instant; the frozen tail is a flush wait.
            let split = self.install_thaw.filter(|fs| *fs < now && *fs > arrived_at);
            if let Some(fs) = split {
                self.probe.emit(|| ObsEvent::Wait {
                    at: fs,
                    who: self.me,
                    span: span_of(msg.id),
                    kind: wait_kind,
                    since: arrived_at,
                    blocker: None,
                    note: String::new(),
                });
            }
            let frozen_tail = self.install_thaw.is_some();
            self.probe.emit(|| ObsEvent::Wait {
                at: now,
                who: self.me,
                span: span_of(msg.id),
                kind: if frozen_tail {
                    WaitKind::FlushBarrier
                } else {
                    wait_kind
                },
                since: split.unwrap_or(arrived_at),
                blocker: None,
                note: if frozen_tail {
                    "delivery frozen until the view installed".to_string()
                } else {
                    String::new()
                },
            });
        }
        self.probe.emit(|| ObsEvent::Span {
            at: now,
            who: self.me,
            span: span_of(msg.id),
            stage: Stage::Delivered,
            note: String::new(),
        });
        self.buffer.insert(msg.id, msg.clone());
        self.forward(&msg, out, false);
        delivered.push(Delivery {
            id: msg.id,
            payload: msg.payload,
            arrived_at,
            delivered_at: now,
            gseq: None,
            waited_for: Vec::new(),
        });
    }

    fn collect_garbage(&mut self, now: SimTime) {
        if !self.stability_dirty {
            return;
        }
        self.stability_dirty = false;
        let frontier = self.stability.stable_frontier();
        if frontier == self.gc_frontier {
            return;
        }
        let before = self.buffer.len();
        self.buffer.retain(|id, _| id.seq > frontier.get(id.sender));
        let reclaimed = before - self.buffer.len();
        self.probe.emit(|| ObsEvent::Phase {
            at: now,
            who: self.me,
            kind: PhaseKind::StabilityRound,
            edge: PhaseEdge::Point,
            note: format!("stable frontier {frontier:?}, {reclaimed} reclaimed"),
        });
        self.gc_frontier = frontier;
        self.stats.stabilized += reclaimed as u64;
        self.note_buffer();
    }

    fn note_buffer(&mut self) {
        let msgs = self.buffer.len() as u64;
        // Constant per-message wire state: id + Pc tag + retransmit flag.
        // (The full clock retained for NACK repair is deliberately not
        // charged — see the module docs.)
        let per_msg = (self.cfg.payload_bytes + 12 + 20 + 1) as u64;
        self.stats.note_buffer(msgs, msgs * per_msg);
    }
}

/// What to do with the head of an in-order link.
enum HeadAction {
    /// Nothing at the cursor — wait for the gap to fill (ARQ).
    Stop,
    /// Consume silently (satisfied skip, never-deliverable data).
    Consume,
    /// Consume as an already-delivered duplicate.
    ConsumeDup,
    /// Deliver the head.
    Deliver,
    /// Stall the link and chase the blocking id via NACK.
    Chase(MsgId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn trio() -> (
        PccastEndpoint<&'static str>,
        PccastEndpoint<&'static str>,
        PccastEndpoint<&'static str>,
    ) {
        let cfg = GroupConfig::default();
        (
            PccastEndpoint::new(0, 3, cfg.clone()),
            PccastEndpoint::new(1, 3, cfg.clone()),
            PccastEndpoint::new(2, 3, cfg),
        )
    }

    /// Delivers every copy addressed to `who` from `out`, returning its
    /// deliveries and any follow-on output.
    fn feed<P: Clone>(
        ep: &mut PccastEndpoint<P>,
        now: SimTime,
        out: &[Out<P>],
    ) -> (Vec<Delivery<P>>, Vec<Out<P>>) {
        let mut dels = Vec::new();
        let mut next = Vec::new();
        for (d, w) in out {
            if *d == Dest::One(ep.me()) {
                let (ds, os) = ep.on_wire(now, w.clone());
                dels.extend(ds);
                next.extend(os);
            }
        }
        (dels, next)
    }

    #[test]
    fn self_delivery_is_immediate_and_tag_is_constant() {
        let (mut a, _, _) = trio();
        let (d, out) = a.multicast(t(0), "hello");
        assert_eq!(d.id, MsgId { sender: 0, seq: 1 });
        assert!(!d.was_held());
        // Ring of 3: both neighbours get a copy, each 33 bytes of
        // overhead (12 id + 20 tag + 1 flag).
        assert_eq!(out.len(), 2);
        for (_, w) in &out {
            assert_eq!(w.overhead_bytes(), 33);
        }
        // bytes/msg accounting mirrors cbcast: one charge per multicast.
        assert_eq!(a.stats().data_overhead_bytes, 33);
    }

    #[test]
    fn tag_size_is_independent_of_group_size() {
        for n in [2usize, 64, 1024] {
            let mut e: PccastEndpoint<u64> = PccastEndpoint::new(0, n, GroupConfig::default());
            let (_, out) = e.multicast(t(0), 7);
            for (_, w) in &out {
                assert_eq!(w.overhead_bytes(), 33, "n={n}");
            }
        }
    }

    #[test]
    fn neighbor_copy_delivers_immediately() {
        let (mut a, mut b, _) = trio();
        let (_, out) = a.multicast(t(0), "m1");
        let (dels, fwd) = feed(&mut b, t(1), &out);
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].payload, "m1");
        assert!(!dels[0].was_held());
        // b forwards its delivery on its own links (the flooding rule).
        assert!(fwd
            .iter()
            .any(|(d, w)| matches!(w, Wire::Data(_)) && *d != Dest::One(0) || *d == Dest::One(0)));
        assert_eq!(b.clock().get(0), 1);
    }

    #[test]
    fn causal_order_rides_link_order() {
        // a sends m1; b delivers it then sends m2 (m1 → m2). c hears
        // everything only through b's link — and b's link carries m1
        // before m2, so c can never invert them.
        let (mut a, mut b, mut c) = trio();
        let (_, out_a) = a.multicast(t(0), "m1");
        let (dels_b, fwd_b) = feed(&mut b, t(1), &out_a);
        assert_eq!(dels_b.len(), 1);
        let (_, out_b) = b.multicast(t(2), "m2");
        // c receives b's forwarded m1 copy and b's own m2, in link order.
        let (d1, _) = feed(&mut c, t(3), &fwd_b);
        let (d2, _) = feed(&mut c, t(3), &out_b);
        let seen: Vec<&str> = d1.iter().chain(d2.iter()).map(|d| d.payload).collect();
        assert_eq!(seen, vec!["m1", "m2"]);
    }

    #[test]
    fn link_reorder_is_buffered_not_lost() {
        // Deliver b's link copies to c in reverse order: the reorder
        // buffer holds the later ones until the head arrives.
        let (mut a, mut b, mut c) = trio();
        let mut to_c: Vec<Out<&str>> = Vec::new();
        for (i, payload) in ["x", "y", "z"].iter().enumerate() {
            let (_, out) = a.multicast(t(i as u64), payload);
            let (_, fwd) = feed(&mut b, t(i as u64), &out);
            to_c.extend(fwd.into_iter().filter(|(d, _)| *d == Dest::One(2)));
        }
        assert_eq!(to_c.len(), 3);
        let mut dels = Vec::new();
        for (i, o) in to_c.iter().rev().enumerate() {
            let (ds, _) = c.on_wire(t(5 + i as u64), o.1.clone());
            dels.extend(ds);
        }
        let seen: Vec<&str> = dels.iter().map(|d| d.payload).collect();
        assert_eq!(seen, vec!["x", "y", "z"]);
        // z and y arrived before x unblocked the link head.
        assert_eq!(c.stats().delivered_after_hold, 2);
        assert_eq!(c.link_buffered_len(), 0);
    }

    #[test]
    fn duplicate_copies_from_both_ring_directions_are_consumed() {
        // In a ring of 3, every member is everyone's neighbour: each
        // message arrives once per direction. The second copy must be
        // consumed as a duplicate without redelivery.
        let (mut a, mut b, mut c) = trio();
        let (_, out) = a.multicast(t(0), "m");
        let (dels_b, fwd_b) = feed(&mut b, t(1), &out);
        let (dels_c, fwd_c) = feed(&mut c, t(1), &out);
        assert_eq!(dels_b.len(), 1);
        assert_eq!(dels_c.len(), 1);
        // b's forward reaches c, and vice versa: both are duplicates.
        let (redeliver_c, _) = feed(&mut c, t(2), &fwd_b);
        let (redeliver_b, _) = feed(&mut b, t(2), &fwd_c);
        assert!(redeliver_c.is_empty());
        assert!(redeliver_b.is_empty());
        assert!(b.stats().duplicates >= 1);
        assert_eq!(b.stats().delivered, 1);
    }

    #[test]
    fn lost_link_copy_is_recovered_via_cumulative_ack() {
        let (mut a, mut b, _) = trio();
        let (_, _out1) = a.multicast(t(0), "m1");
        let (_, out2) = a.multicast(t(1), "m2");
        // b's copy of m1 is lost; m2 arrives and waits in the link buffer.
        let (dels, _) = feed(&mut b, t(2), &out2);
        assert!(dels.is_empty());
        assert_eq!(b.link_buffered_len(), 1);
        // b's tick acks cursor 0 to a; a re-serves link position 1.
        let ticks = b.on_tick(t(30));
        let ack = ticks
            .iter()
            .find(|(d, w)| *d == Dest::One(0) && matches!(w, Wire::PcAck { .. }))
            .expect("per-link ack to the upstream neighbour");
        let (_, resent) = a.on_wire(t(31), ack.1.clone());
        assert!(!resent.is_empty(), "ARQ must re-serve the unacked tail");
        let (dels, _) = feed(&mut b, t(32), &resent);
        let seen: Vec<&str> = dels.iter().map(|d| d.payload).collect();
        assert_eq!(seen, vec!["m1", "m2"]);
    }

    #[test]
    fn repair_retransmission_goes_through_holdback() {
        // A full-timestamped NACK retransmission must deliver through
        // the holdback path; the late link copy of the same message then
        // consumes as a duplicate and unstalls the link.
        let (mut a, mut b, mut c) = trio();
        let (_, out1) = a.multicast(t(0), "m1");
        let (_, fwd_b) = feed(&mut b, t(1), &out1);
        let (_, out2) = b.multicast(t(2), "m2");
        // c misses m1 entirely at first: b's link to c carries m1 at
        // position 1 (delayed) and m2 at position 2 (arrives).
        let m1_copy: Vec<Out<&str>> = fwd_b
            .iter()
            .filter(|(d, _)| *d == Dest::One(2))
            .cloned()
            .collect();
        let to_c: Vec<Out<&str>> = out2
            .iter()
            .filter(|(d, _)| *d == Dest::One(2))
            .cloned()
            .collect();
        let (dels, _) = feed(&mut c, t(3), &to_c);
        assert!(dels.is_empty(), "m2 must wait for its link predecessor");
        // Serve m1 as a full-timestamped repair copy (as a NACK would).
        let mut repair = match &out1[0].1 {
            Wire::Data(d) => d.clone(),
            _ => panic!("data"),
        };
        repair.retransmit = true;
        repair.make_full();
        let (dels, _) = c.on_wire(t(4), Wire::Data(repair));
        let seen: Vec<&str> = dels.iter().map(|d| d.payload).collect();
        assert_eq!(seen, vec!["m1"], "repair path delivers the hole");
        assert_eq!(c.stats().delivered_after_hold, 0);
        // The delayed position-1 link copy arrives: consumed as a
        // duplicate, and the stalled head (m2) follows in causal order.
        let (dels, _) = feed(&mut c, t(5), &m1_copy);
        let seen: Vec<&str> = dels.iter().map(|d| d.payload).collect();
        assert_eq!(seen, vec!["m2"]);
        assert_eq!(c.stats().delivered, 2);
        assert!(c.stats().duplicates >= 1);
        assert_eq!(c.link_buffered_len(), 0);
    }

    #[test]
    fn quiescent_group_reaches_stability_via_tick_gossip() {
        let (mut a, mut b, mut c) = trio();
        let (_, out) = a.multicast(t(0), "last words");
        feed(&mut b, t(1), &out);
        feed(&mut c, t(1), &out);
        assert!(a.stability_lag() > 0);
        assert_eq!(a.stats().buffered_now, 1);
        for round in 0..2u64 {
            let now = t(10 + round);
            let ga = a.on_tick(now);
            let gb = b.on_tick(now);
            let gc_out = c.on_tick(now);
            for (src, outs) in [(0usize, &ga), (1, &gb), (2, &gc_out)] {
                for (_, w) in outs {
                    if matches!(w, Wire::AckGossip { .. }) {
                        if src != 0 {
                            a.on_wire(now, w.clone());
                        }
                        if src != 1 {
                            b.on_wire(now, w.clone());
                        }
                        if src != 2 {
                            c.on_wire(now, w.clone());
                        }
                    }
                }
            }
        }
        for (who, ep) in [(0, &a), (1, &b), (2, &c)] {
            assert_eq!(ep.stability_lag(), 0, "P{who} horizon stuck");
        }
        assert_eq!(a.stats().buffered_now, 0);
        assert_eq!(a.stats().stabilized, 1);
    }

    #[test]
    fn view_install_resets_epoch_and_links() {
        let (mut a, mut b, _) = trio();
        let (_, out) = a.multicast(t(0), "old view");
        feed(&mut b, t(1), &out);
        // Member 2 is evicted; view 2 installs with the agreed cut.
        let cut = VectorClock::from_entries(vec![1, 0, 0]);
        a.freeze(t(2));
        b.freeze(t(2));
        let (_, _) = a.on_view_install(t(3), 2, &[0, 1], &cut);
        let (_, _) = b.on_view_install(t(3), 2, &[0, 1], &cut);
        // New multicasts ride epoch-2 links starting from sequence 1.
        let (_, out2) = a.multicast(t(4), "new view");
        assert_eq!(out2.len(), 1, "pair ring has one neighbour");
        match &out2[0].1 {
            Wire::Data(d) => match d.vt_wire {
                VtWire::Pc {
                    epoch, link_seq, ..
                } => {
                    assert_eq!(epoch, 2);
                    assert_eq!(link_seq, 1);
                }
                _ => panic!("pc tag expected"),
            },
            _ => panic!("data expected"),
        }
        let (dels, _) = feed(&mut b, t(5), &out2);
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].payload, "new view");
    }

    #[test]
    fn stale_epoch_copies_are_dropped() {
        let (mut a, mut b, _) = trio();
        let (_, out) = a.multicast(t(0), "from view 1");
        // b installs view 2 before the copy arrives.
        b.freeze(t(1));
        let cut = VectorClock::new(3);
        b.on_view_install(t(2), 2, &[0, 1], &cut);
        let (dels, _) = feed(&mut b, t(3), &out);
        assert!(dels.is_empty(), "old-epoch link copies must not deliver");
        assert_eq!(b.link_buffered_len(), 0);
    }

    #[test]
    fn post_install_barrier_orders_old_before_new() {
        // b must not fast-path-deliver a's new-epoch message while a
        // pre-install message under the cut is still missing here: the
        // fresh link cannot vouch for it.
        let (mut a, mut b, _) = trio();
        // a delivered m2.1 in view 1 (b never got it), then view 2
        // installs with cut [0,0,1] and evicts member 2.
        let m21 = {
            let mut vt = VectorClock::new(3);
            vt.set(2, 1);
            DataMsg {
                id: MsgId { sender: 2, seq: 1 },
                vt_wire: VtWire::Full(vt.encode()),
                vt,
                payload: "pre-install",
                retransmit: false,
                appended: Vec::new(),
            }
        };
        a.on_wire(t(0), Wire::Data(m21.clone()));
        assert_eq!(a.clock().get(2), 1);
        let cut = VectorClock::from_entries(vec![0, 0, 1]);
        a.freeze(t(1));
        b.freeze(t(1));
        a.on_view_install(t(2), 2, &[0, 1], &cut);
        b.on_view_install(t(2), 2, &[0, 1], &cut);
        // a multicasts in the new view — causally after m2.1.
        let (_, out) = a.multicast(t(3), "post-install");
        let (dels, _) = feed(&mut b, t(4), &out);
        assert!(
            dels.is_empty(),
            "barrier must hold the new-epoch message until the cut is met"
        );
        // The flush retransmission of m2.1 arrives (full timestamp) —
        // both deliver, in causal order.
        let mut repair = m21;
        repair.retransmit = true;
        let (dels, _) = b.on_wire(t(5), Wire::Data(repair));
        let seen: Vec<&str> = dels.iter().map(|d| d.payload).collect();
        assert_eq!(seen, vec!["pre-install", "post-install"]);
    }

    #[test]
    fn frozen_endpoint_buffers_but_does_not_deliver() {
        let (mut a, mut b, _) = trio();
        let (_, out) = a.multicast(t(0), "during flush");
        b.freeze(t(1));
        let (dels, _) = feed(&mut b, t(2), &out);
        assert!(dels.is_empty());
        assert!(b.is_frozen());
        // Thaw via install of the same membership: the copy delivers.
        let (dels, _) = b.on_view_install(t(3), 1, &[0, 1, 2], &VectorClock::new(3));
        // Same view id — links were reset, so the buffered copy died with
        // its epoch... unless the epoch matches. Epoch 1 == view 1: the
        // links were cleared, so recovery rides ARQ instead.
        assert!(dels.is_empty());
        let ticks = b.on_tick(t(30));
        let ack = ticks
            .iter()
            .find(|(d, w)| *d == Dest::One(0) && matches!(w, Wire::PcAck { .. }))
            .expect("ack to upstream");
        let (_, resent) = a.on_wire(t(31), ack.1.clone());
        let (dels, _) = feed(&mut b, t(32), &resent);
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].payload, "during flush");
    }

    #[test]
    fn skip_marker_consumes_for_delivered_id_and_chases_otherwise() {
        let (mut a, mut b, _) = trio();
        let (_, out) = a.multicast(t(0), "m1");
        let (dels, _) = feed(&mut b, t(1), &out);
        assert_eq!(dels.len(), 1);
        // A skip for position 2 naming an undelivered id stalls; after
        // the id is delivered via repair it consumes.
        let skip: Wire<&str> = Wire::PcSkip {
            from: 0,
            epoch: 1,
            link_seq: 2,
            id: MsgId { sender: 0, seq: 2 },
        };
        b.on_wire(t(2), skip);
        assert_eq!(b.link_buffered_len(), 1);
        let mut vt = VectorClock::new(3);
        vt.set(0, 2);
        let repair = DataMsg {
            id: MsgId { sender: 0, seq: 2 },
            vt_wire: VtWire::Full(vt.encode()),
            vt,
            payload: "m2",
            retransmit: true,
            appended: Vec::new(),
        };
        let (dels, _) = b.on_wire(t(3), Wire::Data(repair));
        assert_eq!(dels.len(), 1);
        assert_eq!(b.link_buffered_len(), 0, "satisfied skip must consume");
    }

    #[test]
    fn repair_and_link_copies_never_double_claim_a_delivery() {
        // Regression (found by the chaos campaigns): a NACK-served full
        // copy can sit in the holdback while the original link copy of
        // the same id reaches a deliverable head. The fast path must
        // defer to the holdback — delivering the link copy would strand
        // the holdback entry with zero waits but no longer deliverable
        // (the indexed queue asserts on exactly that).
        let (_, mut b, _) = trio();
        let mk = |sender: usize, entries: Vec<u64>, payload: &'static str| {
            let vt = VectorClock::from_entries(entries);
            DataMsg {
                id: MsgId {
                    sender,
                    seq: vt.get(sender),
                },
                vt_wire: VtWire::Full(vt.encode()),
                vt,
                payload,
                retransmit: true,
                appended: Vec::new(),
            }
        };
        // Repair copy of m0.1, causally after m1.1 (not yet delivered):
        // parks in the holdback.
        let (dels, _) = b.on_wire(t(0), Wire::Data(mk(0, vec![1, 1, 0], "m0.1")));
        assert!(dels.is_empty());
        assert_eq!(b.holdback_len(), 1);
        // The link copy of the same id arrives at a deliverable head
        // (seq == vt[0]+1, barrier met). It must stall, not deliver.
        let mut link_copy = mk(0, vec![1, 1, 0], "m0.1");
        link_copy.retransmit = false;
        link_copy.vt_wire = VtWire::Pc {
            epoch: 1,
            from: 0,
            link_seq: 1,
        };
        let (dels, _) = b.on_wire(t(1), Wire::Data(link_copy));
        assert!(dels.is_empty(), "fast path must defer to the holdback");
        assert_eq!(b.link_buffered_len(), 1);
        // The missing predecessor arrives: holdback delivers both in
        // causal order and the stalled head resolves as a duplicate.
        let (dels, _) = b.on_wire(t(2), Wire::Data(mk(1, vec![0, 1, 0], "m1.1")));
        let seen: Vec<&str> = dels.iter().map(|d| d.payload).collect();
        assert_eq!(seen, vec!["m1.1", "m0.1"]);
        assert_eq!(b.link_buffered_len(), 0);
        assert_eq!(b.holdback_len(), 0);
        assert!(b.stats().duplicates >= 1);
    }

    #[test]
    fn sample_emits_pccast_prefixed_gauges() {
        let (a, _, _) = trio();
        let mut names = Vec::new();
        a.sample(&mut |name, value| {
            assert!(value.is_finite());
            names.push(name.to_string());
        });
        assert!(names.iter().all(|n| n.starts_with("pccast.")));
        assert!(names.iter().any(|n| n == "pccast.linkbuf"));
    }

    #[test]
    fn hold_time_is_recorded_for_stalled_heads() {
        let (mut a, mut b, _) = trio();
        let (_, o1) = a.multicast(t(0), "m1");
        let (_, o2) = a.multicast(t(1), "m2");
        let (none, _) = feed(&mut b, t(2), &o2);
        assert!(none.is_empty());
        let (dels, _) = feed(&mut b, t(7), &o1);
        assert_eq!(dels.len(), 2);
        assert!(dels[1].was_held());
        assert_eq!(dels[1].hold_time(), SimDuration::from_millis(5));
    }
}
