//! Holdback-queue implementations for the causal delivery hot path.
//!
//! The holdback queue is where cbcast pays (or avoids paying) the paper's
//! §3.4 per-message overhead on the *receive* side: every wire event asks
//! "is anything deliverable now?" and "have I already got this message?".
//!
//! Two implementations share one interface so experiments can compare
//! them directly (T7+) and tests can assert behavioural equivalence:
//!
//! - [`HoldbackQueue::Scan`] — the naive structure: a `Vec` of pending
//!   messages, membership by linear scan, and a rescan-from-scratch drain.
//!   O(H) per event, O(H²) per cascade drain.
//! - [`HoldbackQueue::Indexed`] — a `HashMap` by id plus a wait-count /
//!   ready-queue scheme: each pending message counts how many of its
//!   direct causal predecessors are undelivered; delivering a message
//!   decrements exactly the messages waiting on it and promotes the newly
//!   ready ones. Amortized O(deps) per event, independent of H.
//!
//! Both deliver in *arrival order among deliverable messages* (the scan
//! picks the earliest-arrived deliverable; the index pops a min-heap keyed
//! by arrival number), so their delivery sequences are identical — a
//! property the `cbcast` proptests pin down.
//!
//! Every structural step (entries examined, registrations, promotions,
//! heap operations) is counted in [`HoldbackQueue::work`]; the T7+
//! experiment reads the counter through `simnet::metrics` to show the
//! scan's per-event work growing linearly with holdback size while the
//! index stays flat.

use crate::group::MsgId;
use crate::wire::DataMsg;
use clocks::vector::VectorClock;
use simnet::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A message sitting in the holdback queue.
#[derive(Debug)]
pub struct Pending<P> {
    /// The data message awaiting its causal predecessors.
    pub msg: DataMsg<P>,
    /// When it physically arrived.
    pub arrived_at: SimTime,
}

/// A holdback queue: either the naive scan structure or the indexed
/// wait-count scheme. See the module docs for the comparison.
#[derive(Debug)]
pub enum HoldbackQueue<P> {
    /// Linear-scan baseline.
    Scan(ScanHoldback<P>),
    /// HashMap + wait-count/ready-heap.
    Indexed(IndexedHoldback<P>),
}

impl<P> HoldbackQueue<P> {
    /// Creates a queue of the requested kind for a group of `n`.
    pub fn new(indexed: bool, n: usize) -> Self {
        if indexed {
            HoldbackQueue::Indexed(IndexedHoldback::new(n))
        } else {
            HoldbackQueue::Scan(ScanHoldback::new(n))
        }
    }

    /// Number of messages currently held.
    pub fn len(&self) -> usize {
        match self {
            HoldbackQueue::Scan(q) => q.items.len(),
            HoldbackQueue::Indexed(q) => q.entries.len(),
        }
    }

    /// Whether nothing is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `id` is currently held. (`&mut` because even a membership
    /// probe is work the scan structure pays for — and we count it.)
    pub fn contains(&mut self, id: MsgId) -> bool {
        match self {
            HoldbackQueue::Scan(q) => {
                let pos = q.items.iter().position(|p| p.msg.id == id);
                q.work += pos.map_or(q.items.len(), |i| i + 1) as u64;
                pos.is_some()
            }
            HoldbackQueue::Indexed(q) => {
                q.work += 1;
                q.entries.contains_key(&id)
            }
        }
    }

    /// Whether `id` is currently held, without counting the probe as
    /// protocol work. Observability paths (the blocked-on explainer, the
    /// flight recorder) use this so a probed run reports the same
    /// [`Self::work`] — and therefore the same digests — as an unprobed
    /// one.
    pub fn peek(&self, id: MsgId) -> bool {
        match self {
            HoldbackQueue::Scan(q) => q.items.iter().any(|p| p.msg.id == id),
            HoldbackQueue::Indexed(q) => q.entries.contains_key(&id),
        }
    }

    /// Iterates the held messages, in no particular order (the indexed
    /// structure is hash-ordered — callers wanting determinism must sort).
    /// Read-only: does not count toward [`Self::work`].
    pub fn pending(&self) -> Box<dyn Iterator<Item = &Pending<P>> + '_> {
        match self {
            HoldbackQueue::Scan(q) => Box::new(q.items.iter()),
            HoldbackQueue::Indexed(q) => Box::new(q.entries.values().map(|e| &e.pending)),
        }
    }

    /// Inserts a newly arrived message. `local_vt` is the receiver's
    /// delivered clock, used by the indexed structure to compute how many
    /// direct predecessors are still undelivered.
    ///
    /// Duplicates are rejected here, not just by the caller: a wire copy
    /// of a message that was already delivered (`id.seq` at or below the
    /// delivered clock) or is still held must return `false` and leave
    /// the queue untouched. Before this guard, a dup arriving *after* its
    /// original was delivered resurrected the entry in the indexed path
    /// (its wait count computes to zero against the advanced clock, so it
    /// popped as ready a second time), and a dup of a still-held message
    /// double-registered its waiters, making `note_delivered` decrement
    /// one wait twice. Returns whether the message was accepted.
    pub fn insert(&mut self, pending: Pending<P>, local_vt: &VectorClock) -> bool {
        // `peek`, not `contains`: well-behaved callers have already paid
        // for their own dup probe, so this defensive re-check must not
        // inflate the work counters T7+ measures.
        let id = pending.msg.id;
        if id.seq <= local_vt.get(id.sender) || self.peek(id) {
            return false;
        }
        match self {
            HoldbackQueue::Scan(q) => {
                q.work += 1;
                q.items.push(pending);
            }
            HoldbackQueue::Indexed(q) => q.insert(pending, local_vt),
        }
        true
    }

    /// Removes and returns the earliest-arrived deliverable message, if
    /// any. After delivering it (and advancing the local clock) the caller
    /// must invoke [`Self::note_delivered`] so dependents are released.
    pub fn pop_ready(&mut self, local_vt: &VectorClock) -> Option<Pending<P>> {
        match self {
            HoldbackQueue::Scan(q) => {
                let pos = q
                    .items
                    .iter()
                    .position(|p| local_vt.deliverable(&p.msg.vt, p.msg.id.sender));
                q.work += pos.map_or(q.items.len(), |i| i + 1) as u64;
                // `remove`, not `swap_remove`: arrival order among the
                // still-held messages is what makes the two
                // implementations deliver identically.
                pos.map(|i| q.items.remove(i))
            }
            HoldbackQueue::Indexed(q) => q.pop_ready(local_vt),
        }
    }

    /// Tells the queue that message (`sender`, `seq`) was delivered (the
    /// local clock component for `sender` advanced to `seq`). This is what
    /// releases dependents in the indexed scheme; the scan rescans anyway.
    pub fn note_delivered(&mut self, sender: usize, seq: u64) {
        match self {
            HoldbackQueue::Scan(_) => {}
            HoldbackQueue::Indexed(q) => q.note_delivered(sender, seq),
        }
    }

    /// Cumulative structural work: holdback entries examined (scan) or
    /// index registrations/promotions/heap operations (indexed).
    pub fn work(&self) -> u64 {
        match self {
            HoldbackQueue::Scan(q) => q.work,
            HoldbackQueue::Indexed(q) => q.work,
        }
    }

    /// Drops every held message from `sender` with `seq > keep_le` — used
    /// at view installs to discard a removed member's messages beyond the
    /// flush cut (they can never become deliverable: their FIFO
    /// predecessors beyond the cut are rejected, so they would otherwise
    /// sit in the queue forever). Returns how many were purged.
    pub fn purge_sender(&mut self, sender: usize, keep_le: u64) -> usize {
        match self {
            HoldbackQueue::Scan(q) => {
                let before = q.items.len();
                q.work += before as u64;
                q.items
                    .retain(|p| p.msg.id.sender != sender || p.msg.id.seq <= keep_le);
                before - q.items.len()
            }
            HoldbackQueue::Indexed(q) => q.purge_sender(sender, keep_le),
        }
    }
}

/// The naive `Vec`-of-pending structure. Every membership test and every
/// drain pass walks the queue from the front.
#[derive(Debug)]
pub struct ScanHoldback<P> {
    items: Vec<Pending<P>>,
    work: u64,
}

impl<P> ScanHoldback<P> {
    fn new(_n: usize) -> Self {
        ScanHoldback {
            items: Vec::new(),
            work: 0,
        }
    }
}

/// The indexed structure: entries by id, a waiter index keyed by the
/// exact (sender, seq) delivery that will satisfy each outstanding wait,
/// and a ready min-heap ordered by arrival so delivery order matches the
/// scan baseline.
///
/// Correctness hinges on one invariant of the cbcast deliverability rule:
/// the local clock component for any sender advances by exactly one per
/// delivery, so the wait threshold `(k, need)` registered at insert time
/// is crossed precisely when message `(k, need)` is delivered — and
/// `note_delivered(k, need)` releases exactly the messages whose last
/// obstacle that was. A message's wait count therefore reaches zero iff
/// it is deliverable.
#[derive(Debug)]
pub struct IndexedHoldback<P> {
    n: usize,
    entries: HashMap<MsgId, IndexedEntry<P>>,
    /// `(sender, seq)` → ids of held messages waiting on that delivery.
    waiters: HashMap<(usize, u64), Vec<MsgId>>,
    /// Wait-count-zero messages, ordered by arrival number.
    ready: BinaryHeap<Reverse<(u64, MsgId)>>,
    next_arrival: u64,
    work: u64,
}

#[derive(Debug)]
struct IndexedEntry<P> {
    pending: Pending<P>,
    waits: usize,
    arrival_no: u64,
}

impl<P> IndexedHoldback<P> {
    fn new(n: usize) -> Self {
        IndexedHoldback {
            n,
            entries: HashMap::new(),
            waiters: HashMap::new(),
            ready: BinaryHeap::new(),
            next_arrival: 0,
            work: 0,
        }
    }

    fn insert(&mut self, pending: Pending<P>, local_vt: &VectorClock) {
        let id = pending.msg.id;
        let arrival_no = self.next_arrival;
        self.next_arrival += 1;
        let mut waits = 0usize;
        for k in 0..self.n {
            // The direct predecessor this message needs from member k:
            // its own previous message (FIFO) or the latest message from
            // k visible in its timestamp.
            let need = if k == id.sender {
                id.seq.saturating_sub(1)
            } else {
                pending.msg.vt.get(k)
            };
            if local_vt.get(k) < need {
                self.waiters.entry((k, need)).or_default().push(id);
                waits += 1;
                self.work += 1;
            }
        }
        self.work += 1;
        if waits == 0 {
            self.ready.push(Reverse((arrival_no, id)));
        }
        self.entries.insert(
            id,
            IndexedEntry {
                pending,
                waits,
                arrival_no,
            },
        );
    }

    fn pop_ready(&mut self, local_vt: &VectorClock) -> Option<Pending<P>> {
        // Lazy deletion: `purge_sender` removes entries without sweeping
        // the heap or the waiter lists, so a popped ready id may no longer
        // be in the index — skip such tombstones.
        while let Some(Reverse((_, id))) = self.ready.pop() {
            self.work += 1;
            let Some(entry) = self.entries.remove(&id) else {
                continue;
            };
            debug_assert!(
                local_vt.deliverable(&entry.pending.msg.vt, id.sender),
                "ready-queue invariant: zero waits implies deliverable"
            );
            return Some(entry.pending);
        }
        None
    }

    fn purge_sender(&mut self, sender: usize, keep_le: u64) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|id, _| id.sender != sender || id.seq <= keep_le);
        let purged = before - self.entries.len();
        // Stale waiter-list and ready-heap references to the purged ids
        // are tolerated: `note_delivered` skips ids missing from the
        // index, and `pop_ready` skips tombstones.
        self.work += purged as u64;
        purged
    }

    fn note_delivered(&mut self, sender: usize, seq: u64) {
        let Some(list) = self.waiters.remove(&(sender, seq)) else {
            return;
        };
        for id in list {
            self.work += 1;
            if let Some(e) = self.entries.get_mut(&id) {
                debug_assert!(e.waits > 0, "waiter registered for {id} with zero waits");
                e.waits = e.waits.saturating_sub(1);
                if e.waits == 0 {
                    self.ready.push(Reverse((e.arrival_no, id)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::VtWire;

    fn msg(sender: usize, seq: u64, vt: &[u64]) -> DataMsg<u32> {
        let vt = VectorClock::from_entries(vt.to_vec());
        DataMsg {
            id: MsgId { sender, seq },
            vt_wire: VtWire::Full(vt.encode()),
            vt,
            payload: 0,
            retransmit: false,
            appended: Vec::new(),
        }
    }

    fn pend(sender: usize, seq: u64, vt: &[u64]) -> Pending<u32> {
        Pending {
            msg: msg(sender, seq, vt),
            arrived_at: SimTime::ZERO,
        }
    }

    /// Drives both implementations through the same out-of-order arrival
    /// pattern and checks identical delivery sequences.
    fn drain_all(q: &mut HoldbackQueue<u32>, vt: &mut VectorClock) -> Vec<MsgId> {
        let mut order = Vec::new();
        while let Some(p) = q.pop_ready(vt) {
            let MsgId { sender, seq } = p.msg.id;
            vt.set(sender, seq);
            q.note_delivered(sender, seq);
            order.push(p.msg.id);
        }
        order
    }

    #[test]
    fn both_impls_release_chain_in_causal_order() {
        // m0.1 → m1.1 → m2.1, arriving fully reversed.
        for indexed in [false, true] {
            let mut q: HoldbackQueue<u32> = HoldbackQueue::new(indexed, 3);
            let mut vt = VectorClock::new(3);
            q.insert(pend(2, 1, &[1, 1, 1]), &vt);
            q.insert(pend(1, 1, &[1, 1, 0]), &vt);
            assert!(drain_all(&mut q, &mut vt).is_empty());
            q.insert(pend(0, 1, &[1, 0, 0]), &vt);
            let order = drain_all(&mut q, &mut vt);
            assert_eq!(
                order,
                vec![
                    MsgId { sender: 0, seq: 1 },
                    MsgId { sender: 1, seq: 1 },
                    MsgId { sender: 2, seq: 1 },
                ],
                "indexed={indexed}"
            );
            assert!(q.is_empty());
        }
    }

    #[test]
    fn concurrent_ready_messages_pop_in_arrival_order() {
        for indexed in [false, true] {
            let mut q: HoldbackQueue<u32> = HoldbackQueue::new(indexed, 3);
            let vt = VectorClock::new(3);
            // Two concurrent, immediately deliverable messages.
            q.insert(pend(1, 1, &[0, 1, 0]), &vt);
            q.insert(pend(0, 1, &[1, 0, 0]), &vt);
            let mut local = VectorClock::new(3);
            let order = drain_all(&mut q, &mut local);
            assert_eq!(order[0], MsgId { sender: 1, seq: 1 }, "indexed={indexed}");
            assert_eq!(order[1], MsgId { sender: 0, seq: 1 });
        }
    }

    #[test]
    fn contains_and_len_agree() {
        for indexed in [false, true] {
            let mut q: HoldbackQueue<u32> = HoldbackQueue::new(indexed, 2);
            let vt = VectorClock::new(2);
            assert!(q.is_empty());
            q.insert(pend(1, 2, &[0, 2]), &vt);
            assert_eq!(q.len(), 1);
            assert!(q.contains(MsgId { sender: 1, seq: 2 }));
            assert!(!q.contains(MsgId { sender: 1, seq: 1 }));
        }
    }

    #[test]
    fn purge_sender_drops_beyond_cut_only() {
        for indexed in [false, true] {
            let mut q: HoldbackQueue<u32> = HoldbackQueue::new(indexed, 3);
            let vt = VectorClock::new(3);
            // Sender 1 held at seqs 2..=4 (FIFO gap at 1); sender 0's
            // message must survive the purge untouched.
            q.insert(pend(1, 2, &[0, 2, 0]), &vt);
            q.insert(pend(1, 3, &[0, 3, 0]), &vt);
            q.insert(pend(1, 4, &[0, 4, 0]), &vt);
            q.insert(pend(0, 1, &[1, 0, 0]), &vt);
            // Cut at 2: seqs 3 and 4 go, seq 2 stays.
            assert_eq!(q.purge_sender(1, 2), 2, "indexed={indexed}");
            assert_eq!(q.len(), 2);
            assert!(q.contains(MsgId { sender: 1, seq: 2 }));
            assert!(!q.contains(MsgId { sender: 1, seq: 3 }));
            // The survivors still drain correctly (tombstoned heap/waiter
            // references must not break delivery).
            let mut local = VectorClock::new(3);
            local.set(1, 1); // seq 1 delivered out of band
            q.note_delivered(1, 1);
            let order = drain_all(&mut q, &mut local);
            assert_eq!(
                order,
                vec![MsgId { sender: 1, seq: 2 }, MsgId { sender: 0, seq: 1 }],
                "indexed={indexed}"
            );
        }
    }

    /// Regression (dup-after-deliver): a duplicated wire copy arriving
    /// after its original was delivered must be rejected, not requeued.
    /// Before the insert guard, the indexed path computed zero waits for
    /// the dup against the advanced clock and popped it as ready again —
    /// a double delivery (and a tripped deliverability debug-assert) —
    /// while the scan path parked it forever, diverging between modes.
    #[test]
    fn dup_after_deliver_is_not_resurrected() {
        for indexed in [false, true] {
            let mut q: HoldbackQueue<u32> = HoldbackQueue::new(indexed, 2);
            let mut vt = VectorClock::new(2);
            assert!(q.insert(pend(1, 1, &[0, 1]), &vt));
            let order = drain_all(&mut q, &mut vt);
            assert_eq!(
                order,
                vec![MsgId { sender: 1, seq: 1 }],
                "indexed={indexed}"
            );
            // The late duplicate: same id, same timestamp, original long
            // delivered. The queue must refuse it and stay empty.
            assert!(!q.insert(pend(1, 1, &[0, 1]), &vt), "indexed={indexed}");
            assert!(q.is_empty(), "indexed={indexed}");
            assert!(drain_all(&mut q, &mut vt).is_empty(), "indexed={indexed}");
        }
    }

    /// Regression (dup-while-held): re-inserting a message that is still
    /// in the queue must not double-register its waiters. Before the
    /// guard, `note_delivered` walked the doubled waiter list and
    /// decremented the single wait twice — a usize underflow panic in the
    /// indexed path.
    #[test]
    fn dup_while_held_does_not_double_count_waits() {
        for indexed in [false, true] {
            let mut q: HoldbackQueue<u32> = HoldbackQueue::new(indexed, 3);
            let vt = VectorClock::new(3);
            // (2,1) waits on exactly one predecessor, (1,1).
            assert!(q.insert(pend(2, 1, &[0, 1, 1]), &vt));
            assert!(!q.insert(pend(2, 1, &[0, 1, 1]), &vt), "indexed={indexed}");
            assert_eq!(q.len(), 1);
            let mut local = VectorClock::new(3);
            local.set(1, 1);
            // Pre-fix indexed: the doubled waiter registration underflows
            // the wait count right here.
            q.note_delivered(1, 1);
            let order = drain_all(&mut q, &mut local);
            assert_eq!(
                order,
                vec![MsgId { sender: 2, seq: 1 }],
                "indexed={indexed}"
            );
        }
    }

    #[test]
    fn peek_and_pending_do_not_count_work() {
        // The observability paths must not perturb the work counters the
        // T7+ experiment (and the chaos digests) are built on.
        for indexed in [false, true] {
            let mut q: HoldbackQueue<u32> = HoldbackQueue::new(indexed, 2);
            let vt = VectorClock::new(2);
            q.insert(pend(1, 2, &[0, 2]), &vt);
            let before = q.work();
            assert!(q.peek(MsgId { sender: 1, seq: 2 }));
            assert!(!q.peek(MsgId { sender: 1, seq: 1 }));
            assert_eq!(q.pending().count(), 1);
            assert_eq!(q.work(), before, "indexed={indexed}");
        }
    }

    #[test]
    fn indexed_work_stays_flat_as_queue_grows() {
        // Hold H messages from one sender, arriving in reverse; the scan
        // pays O(H) per probe while the index pays O(1).
        let h = 64u64;
        let mut probes_scan = 0u64;
        let mut probes_idx = 0u64;
        for (indexed, probes) in [(false, &mut probes_scan), (true, &mut probes_idx)] {
            let mut q: HoldbackQueue<u32> = HoldbackQueue::new(indexed, 2);
            let vt = VectorClock::new(2);
            for seq in (2..=h).rev() {
                q.insert(pend(1, seq, &[0, seq]), &vt);
            }
            let before = q.work();
            q.contains(MsgId { sender: 1, seq: 1 });
            *probes = q.work() - before;
        }
        assert!(probes_scan >= h - 1, "scan probe walks the queue");
        assert_eq!(probes_idx, 1, "indexed probe is O(1)");
    }
}
