//! Process groups, views, message identities and protocol configuration.

use serde::{Deserialize, Serialize};
use simnet::process::ProcessId;
use simnet::time::SimDuration;
use std::fmt;

/// Identifies one multicast within a group: the `seq`-th message sent by
/// group member `sender` (member index, not `ProcessId`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MsgId {
    /// Member index of the sender within the group.
    pub sender: usize,
    /// 1-based per-sender sequence number (equals the sender's vector
    /// clock component at send time for cbcast).
    pub seq: u64,
}

impl fmt::Debug for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}.{}", self.sender, self.seq)
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}.{}", self.sender, self.seq)
    }
}

/// Identifies an installed membership view.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default, Debug,
)]
pub struct ViewId(pub u64);

/// A membership view: the agreed set of group members.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct View {
    /// Monotonically increasing view identifier.
    pub id: ViewId,
    /// Simulator process ids of the members, indexed by member index.
    pub members: Vec<ProcessId>,
}

impl View {
    /// The initial view over the given processes.
    pub fn initial(members: Vec<ProcessId>) -> Self {
        View {
            id: ViewId(1),
            members,
        }
    }

    /// Group size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the view has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Member index of `p`, if present.
    pub fn index_of(&self, p: ProcessId) -> Option<usize> {
        self.members.iter().position(|&m| m == p)
    }

    /// The successor view with `removed` excluded.
    pub fn without(&self, removed: &[ProcessId]) -> View {
        View {
            id: ViewId(self.id.0 + 1),
            members: self
                .members
                .iter()
                .copied()
                .filter(|m| !removed.contains(m))
                .collect(),
        }
    }
}

/// Which causal-delivery algorithm a causal group runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CausalDiscipline {
    /// ISIS-style cbcast: every data message carries an N-wide vector
    /// timestamp and receivers hold back until the deliverability test
    /// passes (§3.4's linear-in-N metadata).
    #[default]
    Cbcast,
    /// PC-broadcast-style constant-metadata causal broadcast: data
    /// messages carry only a constant-size `(epoch, link, seq)` tag and
    /// ride reliable FIFO links, with per-link reorder buffers (hybrid
    /// buffering) in place of vector-clock wait counts. See
    /// `catocs::pccast`.
    Pccast,
}

impl CausalDiscipline {
    /// Short name, used as the telemetry-sample prefix.
    pub fn name(&self) -> &'static str {
        match self {
            CausalDiscipline::Cbcast => "cbcast",
            CausalDiscipline::Pccast => "pccast",
        }
    }
}

/// Protocol tuning knobs shared by the multicast endpoints.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GroupConfig {
    /// Nominal application payload size, bytes (for byte accounting).
    pub payload_bytes: usize,
    /// When true, delivered-clock acknowledgements ride on data messages;
    /// when false they are sent as separate gossip on each tick. This is
    /// the piggyback ablation of §5 ("there are fewer application messages
    /// on which to piggyback acknowledgment information").
    pub piggyback_acks: bool,
    /// Interval between ack-gossip/retransmit-scan ticks.
    pub tick_interval: SimDuration,
    /// How long a missing message may be outstanding before (re-)NACKing.
    pub nack_timeout: SimDuration,
    /// Cap on MsgIds listed in a single NACK.
    pub max_nack_batch: usize,
    /// Piggyback unstable causal predecessors onto each data message
    /// instead of relying on holdback + NACK recovery (§3.4 footnote 4).
    /// Trades bandwidth for delivery delay.
    pub append_predecessors: bool,
    /// Cap on predecessors appended per message.
    pub max_append: usize,
    /// Use the indexed (HashMap + wait-count/ready-queue) holdback queue
    /// instead of the linear-scan baseline. Delivery behaviour is
    /// identical; only the per-event work differs (measured by T7+).
    pub indexed_holdback: bool,
    /// Stamp outbound data messages with a delta-encoded vector timestamp
    /// (against the sender's previous message) instead of the full
    /// vector. Retransmissions always fall back to full encoding.
    pub delta_timestamps: bool,
    /// Which causal-delivery algorithm `Discipline::Causal` groups run:
    /// vector-timestamp cbcast (default) or constant-metadata pccast.
    /// The other disciplines (fifo/total) ignore this knob.
    pub discipline: CausalDiscipline,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            payload_bytes: 256,
            piggyback_acks: true,
            tick_interval: SimDuration::from_millis(10),
            nack_timeout: SimDuration::from_millis(20),
            max_nack_batch: 64,
            append_predecessors: false,
            max_append: 16,
            indexed_holdback: true,
            delta_timestamps: false,
            discipline: CausalDiscipline::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_id_formats() {
        let id = MsgId { sender: 2, seq: 7 };
        assert_eq!(id.to_string(), "m2.7");
        assert_eq!(format!("{id:?}"), "m2.7");
    }

    #[test]
    fn msg_id_orders_by_sender_then_seq() {
        let a = MsgId { sender: 0, seq: 9 };
        let b = MsgId { sender: 1, seq: 1 };
        assert!(a < b);
    }

    #[test]
    fn view_membership() {
        let v = View::initial(vec![ProcessId(3), ProcessId(5), ProcessId(9)]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v.index_of(ProcessId(5)), Some(1));
        assert_eq!(v.index_of(ProcessId(1)), None);
    }

    #[test]
    fn view_without_removes_and_bumps_id() {
        let v = View::initial(vec![ProcessId(0), ProcessId(1), ProcessId(2)]);
        let v2 = v.without(&[ProcessId(1)]);
        assert_eq!(v2.id, ViewId(2));
        assert_eq!(v2.members, vec![ProcessId(0), ProcessId(2)]);
    }

    #[test]
    fn default_config_sane() {
        let c = GroupConfig::default();
        assert!(c.piggyback_acks);
        assert!(c.max_nack_batch > 0);
        assert!(c.tick_interval < c.nack_timeout + c.tick_interval);
    }
}
