//! Message-stability tracking: who is known to have delivered what.
//!
//! A message is *stable* when every group member is known to have
//! delivered it; only then may its buffered copy be discarded. This module
//! wraps a [`MatrixClock`] with the accounting experiment T5 reads: how
//! much delivery knowledge a node carries (the matrix itself is `N×N`) and
//! where the group-wide stability frontier sits.

use clocks::matrix::MatrixClock;
use clocks::vector::VectorClock;
use serde::{Deserialize, Serialize};

/// Per-endpoint stability knowledge.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StabilityTracker {
    matrix: MatrixClock,
    n: usize,
    /// Which members' rows count toward stability. A removed member's row
    /// freezes at its last known clock; without masking it out, the
    /// stable frontier (and therefore buffer GC) would freeze with it.
    alive: Vec<bool>,
}

impl StabilityTracker {
    /// Creates a tracker for a group of `n`.
    pub fn new(n: usize) -> Self {
        StabilityTracker {
            matrix: MatrixClock::new(n),
            n,
            alive: vec![true; n],
        }
    }

    /// Restricts stability to `members` (surviving member indices) — the
    /// view-install hook. Rows of removed members no longer gate the
    /// stable frontier.
    pub fn set_members(&mut self, members: &[usize]) {
        for (i, a) in self.alive.iter_mut().enumerate() {
            *a = members.contains(&i);
        }
    }

    /// Group size.
    pub fn group_size(&self) -> usize {
        self.n
    }

    /// Records that `who` delivered the `seq`-th message from `sender`
    /// (used for the local process's own deliveries). Returns whether
    /// this was new knowledge (the stability frontier may have moved).
    pub fn record_local_delivery(&mut self, who: usize, sender: usize, seq: u64) -> bool {
        self.matrix.record_delivery(who, sender, seq)
    }

    /// Incorporates a peer's advertised delivered clock. Returns whether
    /// any component advanced.
    pub fn update_row(&mut self, who: usize, delivered: &VectorClock) -> bool {
        self.matrix.update_row(who, delivered)
    }

    /// The group-wide stability frontier: component `s` is the highest
    /// seq from sender `s` known delivered by every current member.
    pub fn stable_frontier(&self) -> VectorClock {
        if self.alive.iter().all(|&a| a) {
            return self.matrix.stable_frontier();
        }
        let mut frontier = VectorClock::new(self.n);
        for s in 0..self.n {
            let min = (0..self.n)
                .filter(|&i| self.alive[i])
                .map(|i| self.matrix.own_row(i).get(s))
                .min()
                .unwrap_or(0);
            frontier.set(s, min);
        }
        frontier
    }

    /// Whether `(sender, seq)` is known stable.
    pub fn is_stable(&self, sender: usize, seq: u64) -> bool {
        if self.alive.iter().all(|&a| a) {
            return self.matrix.is_stable(sender, seq);
        }
        (0..self.n)
            .filter(|&i| self.alive[i])
            .all(|i| self.knows_delivered(i, sender, seq))
    }

    /// How many members are known to have delivered `(sender, seq)` —
    /// the quantity a Deceit-style write-safety level compares against.
    pub fn ack_count(&self, sender: usize, seq: u64) -> usize {
        (0..self.n)
            .filter(|&i| self.knows_delivered(i, sender, seq))
            .count()
    }

    /// Whether member `who` is known to have delivered `(sender, seq)`.
    pub fn knows_delivered(&self, who: usize, sender: usize, seq: u64) -> bool {
        self.matrix.own_row(who).get(sender) >= seq
    }

    /// Bytes of delivery-knowledge state carried by this node (§5's
    /// communication-state cost; grows as `N²`).
    pub fn state_bytes(&self) -> usize {
        self.matrix.encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_advances_with_knowledge() {
        let mut s = StabilityTracker::new(3);
        s.record_local_delivery(0, 0, 2);
        assert_eq!(s.stable_frontier().get(0), 0);
        s.update_row(1, &VectorClock::from_entries(vec![2, 0, 0]));
        s.update_row(2, &VectorClock::from_entries(vec![2, 0, 0]));
        assert_eq!(s.stable_frontier().get(0), 2);
        assert!(s.is_stable(0, 2));
        assert!(!s.is_stable(0, 3));
    }

    #[test]
    fn ack_count_counts_members() {
        let mut s = StabilityTracker::new(4);
        s.record_local_delivery(0, 0, 1);
        assert_eq!(s.ack_count(0, 1), 1);
        s.update_row(2, &VectorClock::from_entries(vec![1, 0, 0, 0]));
        assert_eq!(s.ack_count(0, 1), 2);
        assert!(s.knows_delivered(2, 0, 1));
        assert!(!s.knows_delivered(3, 0, 1));
    }

    #[test]
    fn removed_member_no_longer_gates_stability() {
        let mut s = StabilityTracker::new(3);
        s.record_local_delivery(0, 0, 2);
        s.update_row(1, &VectorClock::from_entries(vec![2, 0, 0]));
        // Member 2 never acked; the frontier is stuck at 0.
        assert_eq!(s.stable_frontier().get(0), 0);
        assert!(!s.is_stable(0, 2));
        // A view change removes member 2: the survivors' knowledge now
        // suffices and GC can proceed.
        s.set_members(&[0, 1]);
        assert_eq!(s.stable_frontier().get(0), 2);
        assert!(s.is_stable(0, 2));
        assert!(!s.is_stable(0, 3));
    }

    #[test]
    fn state_bytes_quadratic() {
        let s8 = StabilityTracker::new(8).state_bytes();
        let s16 = StabilityTracker::new(16).state_bytes();
        assert!(s16 > 3 * s8);
        assert_eq!(StabilityTracker::new(4).group_size(), 4);
    }
}
