//! Causal domains: causality preserved *across* process groups (§5).
//!
//! > "Partitioning a large process group into smaller process groups does
//! > not necessarily reduce this problem unless the smaller groups are
//! > not causally related. For instance, the 'causal domain', proposed as
//! > a causally related set of groups, can have the same quadratic
//! > growth. The division into groups only reduces the
//! > application-generated message traffic to each receiver, not the
//! > message delivery delays."
//!
//! This module implements the *conservative* causal-domain scheme: every
//! message in the domain is disseminated causally to **every** domain
//! member (one shared vector clock over all members); addressing is a
//! per-message group tag, and the endpoint filters deliveries so the
//! application only sees traffic for groups it joined. Ordering state,
//! holdback delay and buffering are therefore those of one big group —
//! which is the measurable content of the paper's claim, reproduced by
//! ablation A3.

use crate::cbcast::CbcastEndpoint;
use crate::group::GroupConfig;
use crate::wire::{Delivery, EndpointStats, Out, Wire};
use serde::{Deserialize, Serialize};
use simnet::time::SimTime;
use std::collections::BTreeSet;

/// Identifies a group within a domain.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct GroupId(pub u32);

/// A payload tagged with its destination group.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Addressed<P> {
    /// Destination group within the domain.
    pub group: GroupId,
    /// The application payload.
    pub payload: P,
}

/// One domain member's endpoint: a causal endpoint over the whole domain
/// plus a membership filter.
#[derive(Debug)]
pub struct DomainEndpoint<P> {
    inner: CbcastEndpoint<Addressed<P>>,
    /// Groups this member has joined.
    joined: BTreeSet<GroupId>,
    /// Deliveries filtered out (traffic for other groups this member
    /// still had to order and buffer — the domain's overhead).
    filtered_out: u64,
}

impl<P: Clone> DomainEndpoint<P> {
    /// Creates the endpoint for domain member `me` of `n_domain` total
    /// members, joined to the given groups.
    pub fn new(me: usize, n_domain: usize, cfg: GroupConfig, joined: &[GroupId]) -> Self {
        DomainEndpoint {
            inner: CbcastEndpoint::new(me, n_domain, cfg),
            joined: joined.iter().copied().collect(),
            filtered_out: 0,
        }
    }

    /// This member's domain index.
    pub fn me(&self) -> usize {
        self.inner.me()
    }

    /// Whether this member joined `group`.
    pub fn is_member_of(&self, group: GroupId) -> bool {
        self.joined.contains(&group)
    }

    /// Joins another group.
    pub fn join(&mut self, group: GroupId) {
        self.joined.insert(group);
    }

    /// Transport statistics (the whole-domain costs).
    pub fn stats(&self) -> &EndpointStats {
        self.inner.stats()
    }

    /// Messages ordered/buffered here that were for groups this member
    /// never joined — the price of the conservative domain.
    pub fn filtered_out(&self) -> u64 {
        self.filtered_out
    }

    /// Unstable messages buffered (includes other groups' traffic).
    pub fn buffered_len(&self) -> usize {
        self.inner.buffered_len()
    }

    /// Multicasts `payload` to `group`. The message still travels to the
    /// whole domain (conservative scheme); non-members discard after
    /// ordering.
    ///
    /// # Panics
    ///
    /// Panics if this member has not joined `group` (senders multicast
    /// only to their own groups).
    pub fn multicast(
        &mut self,
        now: SimTime,
        group: GroupId,
        payload: P,
    ) -> (Vec<Delivery<P>>, Vec<Out<Addressed<P>>>) {
        assert!(
            self.joined.contains(&group),
            "sender must be a member of the destination group"
        );
        let (d, out) = self.inner.multicast(now, Addressed { group, payload });
        (self.filter(vec![d]), out)
    }

    /// Handles incoming domain traffic.
    pub fn on_wire(
        &mut self,
        now: SimTime,
        wire: Wire<Addressed<P>>,
    ) -> (Vec<Delivery<P>>, Vec<Out<Addressed<P>>>) {
        let (dels, out) = self.inner.on_wire(now, wire);
        (self.filter(dels), out)
    }

    /// Periodic maintenance.
    pub fn on_tick(&mut self, now: SimTime) -> Vec<Out<Addressed<P>>> {
        self.inner.on_tick(now)
    }

    fn filter(&mut self, dels: Vec<Delivery<Addressed<P>>>) -> Vec<Delivery<P>> {
        let mut out = Vec::new();
        for d in dels {
            if self.joined.contains(&d.payload.group) {
                out.push(Delivery {
                    id: d.id,
                    payload: d.payload.payload,
                    arrived_at: d.arrived_at,
                    delivered_at: d.delivered_at,
                    gseq: d.gseq,
                    waited_for: d.waited_for,
                });
            } else {
                self.filtered_out += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Dest;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    const GA: GroupId = GroupId(0);
    const GB: GroupId = GroupId(1);

    /// Domain of 3: member 0 in A, member 2 in B, member 1 bridges both.
    fn domain() -> (
        DomainEndpoint<&'static str>,
        DomainEndpoint<&'static str>,
        DomainEndpoint<&'static str>,
    ) {
        let cfg = GroupConfig::default();
        (
            DomainEndpoint::new(0, 3, cfg.clone(), &[GA]),
            DomainEndpoint::new(1, 3, cfg.clone(), &[GA, GB]),
            DomainEndpoint::new(2, 3, cfg, &[GB]),
        )
    }

    fn data_of(out: &[Out<Addressed<&'static str>>]) -> Wire<Addressed<&'static str>> {
        out.iter()
            .find_map(|(d, w)| match (d, w) {
                (Dest::All, Wire::Data(_)) => Some(w.clone()),
                _ => None,
            })
            .expect("broadcast data")
    }

    #[test]
    fn delivery_filtered_by_membership() {
        let (mut a, mut b, mut c) = domain();
        let (_, out) = a.multicast(t(0), GA, "for A");
        let (db, _) = b.on_wire(t(1), data_of(&out));
        assert_eq!(db.len(), 1, "bridge is in A");
        let (dc, _) = c.on_wire(t(1), data_of(&out));
        assert!(dc.is_empty(), "c is not in A");
        assert_eq!(c.filtered_out(), 1);
        // But c still buffered the foreign message (the domain cost).
        assert_eq!(c.buffered_len(), 1);
    }

    #[test]
    fn cross_group_causality_enforced() {
        // a multicasts in A; the bridge b receives it and multicasts in
        // B; c (B only) receives b's message first — it must wait for
        // a's message (which it will discard!) before delivering b's.
        let (mut a, mut b, mut c) = domain();
        let (_, o1) = a.multicast(t(0), GA, "cause in A");
        let m1 = data_of(&o1);
        b.on_wire(t(1), m1.clone());
        let (_, o2) = b.multicast(t(2), GB, "effect in B");
        let m2 = data_of(&o2);

        let (dels, _) = c.on_wire(t(3), m2);
        assert!(
            dels.is_empty(),
            "b's message is held until a's (foreign!) message arrives"
        );
        let (dels, _) = c.on_wire(t(4), m1);
        assert_eq!(dels.len(), 1, "only the B message reaches the app");
        assert_eq!(dels[0].payload, "effect in B");
        assert!(dels[0].was_held(), "delayed by a message c never sees");
        assert_eq!(c.filtered_out(), 1);
    }

    #[test]
    fn join_extends_visibility() {
        let (mut a, _b, mut c) = domain();
        c.join(GA);
        let (_, out) = a.multicast(t(0), GA, "now visible");
        let (dc, _) = c.on_wire(t(1), data_of(&out));
        assert_eq!(dc.len(), 1);
        assert!(c.is_member_of(GA));
    }

    #[test]
    #[should_panic(expected = "member of the destination group")]
    fn cannot_send_to_foreign_group() {
        let (mut a, _, _) = domain();
        let _ = a.multicast(t(0), GB, "not my group");
    }

    #[test]
    fn sender_self_delivery_filtered_correctly() {
        let (_, mut b, _) = domain();
        let (dels, _) = b.multicast(t(0), GB, "bridge to B");
        assert_eq!(dels.len(), 1, "sender is in the destination group");
    }
}
