//! Totally ordered multicast (`abcast`) via a fixed sequencer.
//!
//! Built on top of [`CbcastEndpoint`]: data disseminates causally (so the
//! total order extends causal order, the assumption the paper makes in
//! §2), and one member — the *sequencer* — assigns a global sequence
//! number to each message as it is causally delivered there. All members
//! release messages to the application strictly in global-sequence order.
//!
//! Consequences the paper highlights, reproduced faithfully:
//!
//! - even the *sender* of a message cannot deliver it before the
//!   sequencer's order assignment arrives (unless it is the sequencer) —
//!   total order costs an extra network hop over causal;
//! - concurrent messages are ordered identically everywhere, but the
//!   order is *incidental* (sequencer arrival), not semantic — Figure 4's
//!   false crossing survives abcast, which experiment F4 demonstrates.

use crate::cbcast::CbcastEndpoint;
use crate::group::{GroupConfig, MsgId};
use crate::wire::{Delivery, Dest, EndpointStats, Out, Wire};
use simnet::obs::{ObsEvent, PhaseEdge, PhaseKind, ProbeHandle, SpanId, Stage, WaitKind};
use simnet::time::SimTime;
use std::collections::{BTreeMap, HashMap};

/// One message stuck behind the total order at inspection time: which
/// order slot its delivery waits on and what is known about that slot.
/// This is the explainer's view of the ledger's `order`/`token` wait
/// taxonomy — same causes, read from live endpoint state instead of
/// from delivery history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrderBlocked {
    /// The held message.
    pub msg: MsgId,
    /// When its data arrived here.
    pub arrived_at: SimTime,
    /// Its own assigned slot in the total order, when known.
    pub gseq: Option<u64>,
    /// The order slot delivery is stuck on (the smallest unreleased one).
    pub missing_slot: u64,
    /// The message assigned to that slot, when the assignment (but not
    /// the data) has arrived.
    pub slot_msg: Option<MsgId>,
}

/// The total-order endpoint for one group member.
#[derive(Debug)]
pub struct AbcastEndpoint<P> {
    cb: CbcastEndpoint<P>,
    sequencer: usize,
    /// Sequencer only: next global sequence number to hand out.
    next_assign: u64,
    /// Known order assignments gseq → msg.
    order: BTreeMap<u64, MsgId>,
    /// Highest gseq G such that every assignment 1..=G is in `order`.
    /// Entries are never removed, so this only advances; it makes the
    /// per-tick order-gap check O(1) amortized instead of O(gap).
    order_contiguous: u64,
    /// Reverse map for diagnostics.
    ordered: HashMap<MsgId, u64>,
    /// Causally delivered but not yet released in total order.
    unreleased: HashMap<MsgId, Delivery<P>>,
    /// Highest gseq released to the application.
    released: u64,
    /// Last order-gap NACK time.
    last_order_nack: Option<SimTime>,
    cfg: GroupConfig,
    /// Observability sink (order assignments). Disabled by default.
    probe: ProbeHandle,
    stats: EndpointStats,
}

impl<P: Clone> AbcastEndpoint<P> {
    /// Creates the endpoint for member `me` of a group of `n`, with the
    /// given sequencer member (conventionally 0).
    pub fn new(me: usize, n: usize, sequencer: usize, cfg: GroupConfig) -> Self {
        assert!(sequencer < n, "sequencer out of range");
        AbcastEndpoint {
            cb: CbcastEndpoint::new(me, n, cfg.clone()),
            sequencer,
            next_assign: 0,
            order: BTreeMap::new(),
            order_contiguous: 0,
            ordered: HashMap::new(),
            unreleased: HashMap::new(),
            released: 0,
            last_order_nack: None,
            cfg,
            probe: ProbeHandle::none(),
            stats: EndpointStats::default(),
        }
    }

    /// Installs an observability probe on this endpoint and its causal
    /// substrate: span events flow from the cbcast layer, order-assign
    /// phase events from the sequencer logic here.
    pub fn set_probe(&mut self, probe: ProbeHandle) {
        self.cb.set_probe(probe.clone());
        self.probe = probe;
    }

    /// This member's index.
    pub fn me(&self) -> usize {
        self.cb.me()
    }

    /// Whether this member is the sequencer.
    pub fn is_sequencer(&self) -> bool {
        self.cb.me() == self.sequencer
    }

    /// Total-order delivery statistics.
    pub fn stats(&self) -> &EndpointStats {
        &self.stats
    }

    /// The underlying causal layer's statistics (buffering, NACKs...).
    pub fn causal_stats(&self) -> &EndpointStats {
        self.cb.stats()
    }

    /// Messages causally delivered but awaiting their slot in the total
    /// order.
    pub fn unreleased_len(&self) -> usize {
        self.unreleased.len()
    }

    /// Telemetry hook: the causal substrate's gauges plus the order-release
    /// backlog specific to the sequencer design.
    pub fn sample(&self, emit: &mut dyn FnMut(&str, f64)) {
        self.cb.sample(emit);
        emit("abcast.unreleased", self.unreleased.len() as f64);
    }

    /// Contributes this endpoint's live blocking edges to a wait-graph
    /// snapshot (read-only; see [`crate::waitgraph`]): the causal
    /// substrate's edges, plus the total-order waits layered on top — a
    /// causally delivered message awaiting release blocks either on the
    /// sequencer's order assignment or on the data for the next global
    /// slot.
    pub fn wait_edges(&self, out: &mut Vec<crate::waitgraph::WaitEdge>) {
        use crate::waitgraph::{PhaseTag, WaitEdge, WaitNode};
        self.cb.wait_edges(out);
        let me = self.cb.me();
        let next_slot = self.released + 1;
        let mut pending: Vec<(&MsgId, &Delivery<P>)> = self.unreleased.iter().collect();
        pending.sort_by_key(|(id, _)| **id);
        for (id, d) in pending {
            let (to, reason) = if !self.ordered.contains_key(id) {
                (
                    WaitNode::Phase {
                        kind: PhaseTag::OrderAssign,
                        at: self.sequencer,
                    },
                    "awaiting order assignment",
                )
            } else {
                match self.order.get(&next_slot) {
                    Some(&slot_id) if slot_id != *id => (
                        WaitNode::Msg(slot_id),
                        "next total-order slot's data not arrived",
                    ),
                    _ => (
                        WaitNode::Phase {
                            kind: PhaseTag::OrderAssign,
                            at: self.sequencer,
                        },
                        "total-order gap before this slot",
                    ),
                }
            };
            out.push(WaitEdge {
                from: WaitNode::Msg(*id),
                to,
                who: me,
                since: d.arrived_at,
                reason,
            });
        }
    }

    /// Snapshot of every causally delivered message still awaiting its
    /// total-order release, with the slot it waits on — the explainer's
    /// structured answer to "what order slot is this stuck behind?".
    /// Sorted by assigned slot (unassigned last), then message id.
    pub fn order_blocked(&self) -> Vec<OrderBlocked> {
        let missing_slot = self.released + 1;
        let slot_msg = self.order.get(&missing_slot).copied();
        let mut v: Vec<OrderBlocked> = self
            .unreleased
            .iter()
            .map(|(id, d)| OrderBlocked {
                msg: *id,
                arrived_at: d.arrived_at,
                gseq: self.ordered.get(id).copied(),
                missing_slot,
                slot_msg,
            })
            .collect();
        v.sort_by_key(|b| (b.gseq.unwrap_or(u64::MAX), b.msg));
        v
    }

    /// Multicasts `payload`. Unlike cbcast there is no immediate
    /// self-delivery: the message is released when its global order slot
    /// comes up (immediately only at the sequencer).
    pub fn multicast(&mut self, now: SimTime, payload: P) -> (Vec<Delivery<P>>, Vec<Out<P>>) {
        let (self_delivery, mut out) = self.cb.multicast(now, payload);
        self.stats.sent += 1;
        self.unreleased
            .insert(self_delivery.id, self_delivery.clone());
        if self.is_sequencer() {
            self.assign_order(now, self_delivery.id, &mut out);
        }
        let released = self.release(now);
        (released, out)
    }

    /// Handles an incoming wire message.
    pub fn on_wire(&mut self, now: SimTime, wire: Wire<P>) -> (Vec<Delivery<P>>, Vec<Out<P>>) {
        let mut out = Vec::new();
        match wire {
            Wire::Order { gseq, id } => {
                self.order.entry(gseq).or_insert(id);
                self.ordered.entry(id).or_insert(gseq);
                self.advance_order_watermark();
            }
            Wire::OrderNack {
                from,
                from_gseq,
                to_gseq,
            } => {
                if self.is_sequencer() {
                    for g in from_gseq..=to_gseq {
                        if let Some(&id) = self.order.get(&g) {
                            let w = Wire::Order { gseq: g, id };
                            self.stats.control_bytes += w.overhead_bytes() as u64;
                            self.stats.retransmits_served += 1;
                            out.push((Dest::One(from), w));
                        }
                    }
                }
            }
            other => {
                let (dels, cb_out) = self.cb.on_wire(now, other);
                out.extend(cb_out);
                for d in dels {
                    if self.is_sequencer() {
                        self.assign_order(now, d.id, &mut out);
                    }
                    self.unreleased.insert(d.id, d);
                }
            }
        }
        let released = self.release(now);
        (released, out)
    }

    /// Periodic maintenance: causal-layer tick plus order-gap recovery.
    pub fn on_tick(&mut self, now: SimTime) -> Vec<Out<P>> {
        let mut out = self.cb.on_tick(now);
        // The sequencer re-announces its latest assignment so that a lost
        // final Order message (with no successor to expose the gap) is
        // still recovered.
        if self.is_sequencer() && self.next_assign > 0 {
            if let Some(&id) = self.order.get(&self.next_assign) {
                let w: Wire<P> = Wire::Order {
                    gseq: self.next_assign,
                    id,
                };
                self.stats.control_bytes += w.overhead_bytes() as u64;
                out.push((Dest::All, w));
            }
        }
        // If we hold order assignments beyond a gap, ask the sequencer to
        // refill the gap.
        if let Some((&max_known, _)) = self.order.iter().next_back() {
            if max_known > self.released {
                let gap_start = self.released + 1;
                let missing = max_known > self.order_contiguous;
                let overdue = match self.last_order_nack {
                    None => true,
                    Some(t) => now.saturating_since(t) >= self.cfg.nack_timeout,
                };
                if missing && overdue && !self.is_sequencer() {
                    self.last_order_nack = Some(now);
                    let w = Wire::OrderNack {
                        from: self.me(),
                        from_gseq: gap_start,
                        to_gseq: max_known,
                    };
                    self.stats.nacks_sent += 1;
                    self.stats.control_bytes += w.overhead_bytes() as u64;
                    out.push((Dest::One(self.sequencer), w));
                }
            }
        }
        out
    }

    fn assign_order(&mut self, now: SimTime, id: MsgId, out: &mut Vec<Out<P>>) {
        if self.ordered.contains_key(&id) {
            return;
        }
        self.next_assign += 1;
        let gseq = self.next_assign;
        self.probe.emit(|| ObsEvent::Phase {
            at: now,
            who: self.cb.me(),
            kind: PhaseKind::OrderAssign,
            edge: PhaseEdge::Point,
            note: format!("gseq {gseq} -> m{}.{}", id.sender, id.seq),
        });
        self.order.insert(gseq, id);
        self.ordered.insert(id, gseq);
        self.advance_order_watermark();
        let w: Wire<P> = Wire::Order { gseq, id };
        self.stats.control_bytes += w.overhead_bytes() as u64;
        out.push((Dest::All, w));
    }

    fn advance_order_watermark(&mut self) {
        while self.order.contains_key(&(self.order_contiguous + 1)) {
            self.order_contiguous += 1;
        }
    }

    /// Releases every message whose global slot is next and whose data
    /// has causally arrived.
    fn release(&mut self, now: SimTime) -> Vec<Delivery<P>> {
        let mut released = Vec::new();
        while let Some(&id) = self.order.get(&(self.released + 1)) {
            let Some(mut d) = self.unreleased.remove(&id) else {
                break; // data not here yet
            };
            self.released += 1;
            d.gseq = Some(self.released);
            let held = now > d.arrived_at;
            let causal_at = d.delivered_at;
            d.delivered_at = now;
            self.stats.delivered += 1;
            if held {
                self.stats.delivered_after_hold += 1;
                self.stats.hold_time_total += now.saturating_since(d.arrived_at);
            }
            let gseq = self.released;
            self.probe.emit(|| ObsEvent::Span {
                at: now,
                who: self.cb.me(),
                span: SpanId {
                    origin: id.sender,
                    seq: id.seq,
                },
                stage: Stage::Delivered,
                note: format!("released gseq {gseq}"),
            });
            if now > causal_at {
                self.probe.emit(|| ObsEvent::Wait {
                    at: now,
                    who: self.cb.me(),
                    span: SpanId {
                        origin: id.sender,
                        seq: id.seq,
                    },
                    kind: WaitKind::OrderWatermark,
                    since: causal_at,
                    blocker: None,
                    note: String::new(),
                });
            }
            released.push(d);
        }
        self.stats.note_holdback(self.unreleased.len() as u64);
        released
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn group(n: usize) -> Vec<AbcastEndpoint<&'static str>> {
        (0..n)
            .map(|i| AbcastEndpoint::new(i, n, 0, GroupConfig::default()))
            .collect()
    }

    /// Fans `out` messages to the right endpoints, collecting deliveries,
    /// until quiescence. A miniature synchronous network.
    fn settle(
        eps: &mut [AbcastEndpoint<&'static str>],
        from: usize,
        out: Vec<Out<&'static str>>,
        now: SimTime,
        sink: &mut Vec<(usize, Delivery<&'static str>)>,
    ) {
        let mut queue: Vec<(usize, usize, Wire<&'static str>)> = Vec::new();
        let n = eps.len();
        for (dest, w) in out {
            match dest {
                Dest::All => {
                    for k in 0..n {
                        if k != from {
                            queue.push((from, k, w.clone()));
                        }
                    }
                }
                Dest::One(k) => queue.push((from, k, w)),
            }
        }
        while let Some((_src, dst, w)) = queue.pop() {
            let (dels, more) = eps[dst].on_wire(now, w);
            for d in dels {
                sink.push((dst, d));
            }
            for (dest, w) in more {
                match dest {
                    Dest::All => {
                        for k in 0..n {
                            if k != dst {
                                queue.push((dst, k, w.clone()));
                            }
                        }
                    }
                    Dest::One(k) => queue.push((dst, k, w)),
                }
            }
        }
    }

    #[test]
    fn sequencer_delivers_own_message_immediately() {
        let mut eps = group(3);
        let (dels, _) = eps[0].multicast(t(0), "s");
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].gseq, Some(1));
    }

    #[test]
    fn non_sequencer_waits_for_order() {
        let mut eps = group(3);
        let (dels, out) = eps[1].multicast(t(0), "x");
        assert!(dels.is_empty(), "sender must wait for the sequencer");
        let mut sink = Vec::new();
        settle(&mut eps, 1, out, t(1), &mut sink);
        // The sequencer assigned order; everyone (incl. the sender, once
        // it gets the Order message) can now release.
        let seq_del: Vec<_> = sink.iter().filter(|(who, _)| *who == 0).collect();
        assert_eq!(seq_del.len(), 1);
        assert_eq!(seq_del[0].1.gseq, Some(1));
    }

    #[test]
    fn all_members_release_same_order() {
        let mut eps = group(4);
        let mut sink: Vec<(usize, Delivery<&'static str>)> = Vec::new();
        // Three concurrent multicasts from different members.
        let (d0, o0) = eps[1].multicast(t(0), "a");
        let (d1, o1) = eps[2].multicast(t(0), "b");
        let (d2, o2) = eps[3].multicast(t(0), "c");
        for d in d0.into_iter().chain(d1).chain(d2) {
            sink.push((usize::MAX, d));
        }
        settle(&mut eps, 1, o0, t(1), &mut sink);
        settle(&mut eps, 2, o1, t(2), &mut sink);
        settle(&mut eps, 3, o2, t(3), &mut sink);
        // Collect per-member release sequences.
        let mut orders: Vec<Vec<(u64, &str)>> = vec![Vec::new(); 4];
        for (who, d) in &sink {
            if *who != usize::MAX {
                orders[*who].push((d.gseq.unwrap(), d.payload));
            }
        }
        // Senders' own releases come back through Order messages too; at
        // minimum every member that released anything released a prefix
        // of the same global sequence.
        let reference: Vec<(u64, &str)> = orders.iter().max_by_key(|v| v.len()).cloned().unwrap();
        for o in &orders {
            assert_eq!(&reference[..o.len()], &o[..], "same total order everywhere");
        }
        assert_eq!(reference.len(), 3);
    }

    #[test]
    fn order_nack_refetches_assignments() {
        let mut eps = group(2);
        let (_, out) = eps[0].multicast(t(0), "m1");
        // Drop the Order broadcast: feed member 1 only the Data part.
        let data = out
            .iter()
            .find(|(_, w)| matches!(w, Wire::Data(_)))
            .cloned()
            .unwrap();
        let order = out
            .iter()
            .find(|(_, w)| matches!(w, Wire::Order { .. }))
            .cloned()
            .unwrap();
        let (dels, _) = eps[1].on_wire(t(1), data.1);
        assert!(dels.is_empty(), "no order assignment yet");
        // Second multicast whose Order does arrive reveals the gap.
        let (_, out2) = eps[0].multicast(t(2), "m2");
        for (_, w) in out2 {
            eps[1].on_wire(t(3), w);
        }
        // Tick triggers an OrderNack for the gap.
        let tick_out = eps[1].on_tick(t(3) + GroupConfig::default().nack_timeout);
        let nack = tick_out
            .into_iter()
            .find(|(_, w)| matches!(w, Wire::OrderNack { .. }));
        assert!(nack.is_some(), "order gap NACKed");
        let (_, resent) = eps[0].on_wire(t(4), nack.unwrap().1);
        assert!(resent
            .iter()
            .any(|(_, w)| matches!(w, Wire::Order { gseq: 1, .. })));
        // Delivering the original order releases both in order.
        let (dels, _) = eps[1].on_wire(t(5), order.1);
        assert_eq!(
            dels.iter()
                .map(|d| (d.gseq.unwrap(), d.payload))
                .collect::<Vec<_>>(),
            vec![(1, "m1"), (2, "m2")]
        );
    }

    #[test]
    #[should_panic(expected = "sequencer out of range")]
    fn rejects_bad_sequencer() {
        let _ = AbcastEndpoint::<()>::new(0, 2, 5, GroupConfig::default());
    }
}
