//! Heartbeat failure detection.
//!
//! Each member multicasts a heartbeat every `interval`; a peer silent for
//! `suspect_after` becomes *suspected*. The detector is deliberately
//! simple (timeout-based, eventually-perfect under bounded delay) — the
//! paper notes that "ordered failure notification can be provided without
//! CATOCS and is useful as a stand-alone capability"; this module is that
//! stand-alone capability, feeding the view-change machinery in
//! [`crate::membership`].

use simnet::time::{SimDuration, SimTime};

/// Per-member liveness tracking for one observer.
#[derive(Debug)]
pub struct FailureDetector {
    me: usize,
    interval: SimDuration,
    suspect_after: SimDuration,
    last_heard: Vec<SimTime>,
    suspected: Vec<bool>,
    last_beat: SimTime,
}

impl FailureDetector {
    /// Creates a detector for member `me` of a group of `n`, constructed
    /// at time `now`. Every peer is credited as heard-from at `now`:
    /// seeding `last_heard` with the construction time (rather than time
    /// zero) is what keeps a detector started late — or rebuilt after a
    /// crash recovery — from instantly suspecting every peer before the
    /// first heartbeat round.
    pub fn new(
        me: usize,
        n: usize,
        interval: SimDuration,
        suspect_after: SimDuration,
        now: SimTime,
    ) -> Self {
        FailureDetector {
            me,
            interval,
            suspect_after,
            last_heard: vec![now; n],
            suspected: vec![false; n],
            last_beat: now,
        }
    }

    /// Forgets everything and re-seeds `last_heard` at `now` — the state a
    /// freshly constructed detector would have. Used on crash recovery,
    /// where the persisted `last_heard` times are arbitrarily stale.
    pub fn reset(&mut self, now: SimTime) {
        for t in &mut self.last_heard {
            *t = now;
        }
        for s in &mut self.suspected {
            *s = false;
        }
        self.last_beat = now;
    }

    /// The heartbeat interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Records a heartbeat (or any traffic) from `who` at `now`.
    pub fn heard_from(&mut self, who: usize, now: SimTime) {
        if who < self.last_heard.len() {
            self.last_heard[who] = now;
            self.suspected[who] = false;
        }
    }

    /// Whether it is time to emit our own heartbeat; updates internal
    /// pacing state when it returns true.
    pub fn should_beat(&mut self, now: SimTime) -> bool {
        if now.saturating_since(self.last_beat) >= self.interval {
            self.last_beat = now;
            true
        } else {
            false
        }
    }

    /// Re-evaluates suspicions; returns members newly suspected at `now`.
    pub fn check(&mut self, now: SimTime) -> Vec<usize> {
        let mut newly = Vec::new();
        for k in 0..self.last_heard.len() {
            if k == self.me || self.suspected[k] {
                continue;
            }
            if now.saturating_since(self.last_heard[k]) >= self.suspect_after {
                self.suspected[k] = true;
                newly.push(k);
            }
        }
        newly
    }

    /// Whether `who` is currently suspected.
    pub fn is_suspected(&self, who: usize) -> bool {
        self.suspected.get(who).copied().unwrap_or(false)
    }

    /// Members currently suspected.
    pub fn suspects(&self) -> Vec<usize> {
        (0..self.suspected.len())
            .filter(|&k| self.suspected[k])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det() -> FailureDetector {
        FailureDetector::new(
            0,
            3,
            SimDuration::from_millis(10),
            SimDuration::from_millis(50),
            SimTime::ZERO,
        )
    }

    #[test]
    fn late_start_does_not_suspect_before_first_round() {
        // Regression: a detector constructed long after time zero used to
        // seed `last_heard` with SimTime::ZERO and suspect every peer on
        // the very first check, before any heartbeat could arrive.
        let born = SimTime::from_secs(10);
        let mut d = FailureDetector::new(
            0,
            3,
            SimDuration::from_millis(10),
            SimDuration::from_millis(50),
            born,
        );
        assert!(
            d.check(born + SimDuration::from_millis(1)).is_empty(),
            "no peer may be suspected before suspect_after elapses from construction"
        );
        // The timeout still applies from the construction instant.
        let newly = d.check(born + SimDuration::from_millis(50));
        assert_eq!(newly, vec![1, 2]);
    }

    #[test]
    fn reset_clears_suspicion_and_reseeds() {
        let mut d = det();
        d.check(SimTime::from_millis(100));
        assert!(d.is_suspected(1) && d.is_suspected(2));
        d.reset(SimTime::from_millis(100));
        assert!(d.suspects().is_empty());
        assert!(d.check(SimTime::from_millis(120)).is_empty());
        let newly = d.check(SimTime::from_millis(150));
        assert_eq!(newly, vec![1, 2], "timeout restarts from the reset point");
    }

    #[test]
    fn silence_leads_to_suspicion() {
        let mut d = det();
        d.heard_from(1, SimTime::from_millis(0));
        d.heard_from(2, SimTime::from_millis(40));
        let newly = d.check(SimTime::from_millis(60));
        assert_eq!(newly, vec![1]);
        assert!(d.is_suspected(1));
        assert!(!d.is_suspected(2));
    }

    #[test]
    fn hearing_again_clears_suspicion() {
        let mut d = det();
        d.check(SimTime::from_millis(100));
        assert!(d.is_suspected(1));
        d.heard_from(1, SimTime::from_millis(101));
        assert!(!d.is_suspected(1));
        assert_eq!(d.suspects(), vec![2]);
    }

    #[test]
    fn never_suspects_self() {
        let mut d = det();
        let newly = d.check(SimTime::from_secs(10));
        assert!(!newly.contains(&0));
    }

    #[test]
    fn newly_reported_once() {
        let mut d = det();
        let first = d.check(SimTime::from_millis(100));
        assert_eq!(first.len(), 2);
        let second = d.check(SimTime::from_millis(200));
        assert!(second.is_empty(), "already-suspected not re-reported");
    }

    #[test]
    fn beat_pacing() {
        let mut d = det();
        assert!(d.should_beat(SimTime::from_millis(10)));
        assert!(!d.should_beat(SimTime::from_millis(15)));
        assert!(d.should_beat(SimTime::from_millis(20)));
        assert_eq!(d.interval(), SimDuration::from_millis(10));
    }
}
