//! The unified wire protocol shared by all multicast disciplines, plus the
//! delivery record handed to applications and the per-endpoint statistics
//! the experiments read.

use crate::group::{MsgId, View, ViewId};
use clocks::vector::VectorClock;
use serde::{Deserialize, Serialize};
use simnet::time::{SimDuration, SimTime};

/// How a data message's vector timestamp travels on the wire.
///
/// The paper's §3.4 overhead critique is about exactly these bytes: a
/// full vector clock rides on every multicast and grows linearly with
/// group size. [`VtWire::Delta`] is the standard mitigation — encode only
/// the components that changed since the sender's previous data message —
/// threaded through the endpoint so the T7+ experiment measures the real
/// trade-off rather than an analytical table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum VtWire {
    /// Full encoding ([`VectorClock::encode`]); always used for
    /// retransmissions and appended predecessors so a receiver with no
    /// decode context can always recover.
    Full(Vec<u8>),
    /// Delta encoding ([`VectorClock::encode_delta`]) against the vector
    /// time of the sender's *previous* data message. Decodable only in
    /// per-sender seq order; receivers park messages that arrive ahead of
    /// their base and fall back to NACK-driven full retransmission.
    Delta(Vec<u8>),
    /// Constant-size pccast tag: no vector at all, just the forwarding
    /// link's `(epoch, from, link_seq)` position. Causal order is implied
    /// by per-link FIFO dissemination, so the tag's size is independent of
    /// group size — the whole point of the constant-metadata discipline.
    Pc {
        /// View id (epoch) the copy was forwarded in.
        epoch: u64,
        /// Member index of the *forwarding* peer (not the origin).
        from: usize,
        /// 1-based FIFO sequence on the `from → receiver` link.
        link_seq: u64,
    },
}

impl VtWire {
    /// Encoded timestamp size in bytes.
    pub fn len(&self) -> usize {
        match self {
            VtWire::Full(b) | VtWire::Delta(b) => b.len(),
            // u64 epoch + u32 from + u64 link_seq.
            VtWire::Pc { .. } => 20,
        }
    }

    /// Whether the encoding is empty (never true for valid encodings).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this is a delta encoding.
    pub fn is_delta(&self) -> bool {
        matches!(self, VtWire::Delta(_))
    }
}

/// A data multicast as it appears on the wire.
#[derive(Clone, Serialize, Deserialize)]
pub struct DataMsg<P> {
    /// Identity: (sender member index, per-sender sequence).
    pub id: MsgId,
    /// The sender's vector time at send (cbcast/abcast); for fbcast only
    /// the sender's own component is meaningful. Receivers reconstruct
    /// this from [`DataMsg::vt_wire`]; carrying the decoded form too keeps
    /// the simulation endpoints cheap to inspect.
    pub vt: VectorClock,
    /// The timestamp's actual wire encoding — what the byte accounting
    /// in [`Wire::overhead_bytes`] measures.
    pub vt_wire: VtWire,
    /// Application payload.
    pub payload: P,
    /// True when this copy is a retransmission.
    pub retransmit: bool,
    /// Causal predecessors piggybacked onto this message — the paper's
    /// §3.4 footnote 4 alternative to holdback delay: "causal protocols
    /// can append earlier 'causal' messages to later dependent messages,
    /// but this technique can significantly increase network traffic."
    /// Empty unless `GroupConfig::append_predecessors` is on.
    pub appended: Vec<DataMsg<P>>,
}

impl<P> DataMsg<P> {
    /// A fresh (non-retransmit) data message with a full-encoded
    /// timestamp and nothing appended.
    pub fn new(id: MsgId, vt: VectorClock, payload: P) -> Self {
        DataMsg {
            id,
            vt_wire: VtWire::Full(vt.encode()),
            vt,
            payload,
            retransmit: false,
            appended: Vec::new(),
        }
    }

    /// Rewrites the timestamp to the full encoding — every retransmitted
    /// or appended copy travels full so any receiver can decode it
    /// without per-sender delta context or link position (the gap/NACK
    /// fallback, for delta-stamped cbcast and pc-tagged pccast alike).
    pub fn make_full(&mut self) {
        if !matches!(self.vt_wire, VtWire::Full(_)) {
            self.vt_wire = VtWire::Full(self.vt.encode());
        }
    }
}

impl<P: std::fmt::Debug> std::fmt::Debug for DataMsg<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Compact: event diagrams want the payload front and centre.
        write!(
            f,
            "{}{}{} {:?}",
            self.id,
            if self.retransmit { "*" } else { "" },
            if self.appended.is_empty() {
                String::new()
            } else {
                format!("+{}", self.appended.len())
            },
            self.payload
        )
    }
}

/// Every message any CATOCS protocol in this crate puts on the network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Wire<P> {
    /// Application data (all disciplines).
    Data(DataMsg<P>),
    /// Delivered-clock gossip for stability tracking and gap detection.
    AckGossip { from: usize, delivered: VectorClock },
    /// Request retransmission of specific messages.
    Nack { from: usize, want: Vec<MsgId> },
    /// Sequencer's total-order assignment: global sequence `gseq` is `id`.
    Order { gseq: u64, id: MsgId },
    /// Request retransmission of order assignments (abcast).
    OrderNack {
        from: usize,
        from_gseq: u64,
        to_gseq: u64,
    },
    /// The rotating token of the token-ring abcast variant.
    Token { next_gseq: u64, hops: u64 },
    /// Acknowledges receipt of the token (token passing must be
    /// reliable: a lost token halts the total order).
    TokenAck { hops: u64 },
    /// Membership: coordinator proposes a new view; members must flush.
    Flush { proposed: View, from: usize },
    /// Membership: member has flushed its unstable messages for `view_id`.
    FlushOk {
        view_id: ViewId,
        from: usize,
        delivered: VectorClock,
    },
    /// Membership: coordinator installs the new view. `cut` is the flush
    /// cut — the component-wise max of every member's `FlushOk` delivered
    /// clock. Messages from removed senders at or below the cut are still
    /// part of the old view's agreed history and remain deliverable;
    /// anything beyond it is discarded.
    Install { view: View, cut: VectorClock },
    /// pccast: cumulative per-link FIFO acknowledgement — "I have
    /// consumed every copy you forwarded me up to `acked`". Drives both
    /// the sender's out-log GC (ARQ window) and tail-loss retransmission.
    PcAck { from: usize, epoch: u64, acked: u64 },
    /// pccast: fills a NACKed link position whose payload was already
    /// garbage-collected as stable on the forwarder. Receivers consume it
    /// like a duplicate if `id` was delivered, else register `id` missing
    /// and keep the link stalled until holdback repair heals it.
    PcSkip {
        from: usize,
        epoch: u64,
        link_seq: u64,
        id: MsgId,
    },
    /// Liveness probe for the failure detector. Carries the sender's
    /// installed view id as cheap anti-entropy: a receiver with a newer
    /// view replies with its `Install`, repairing stragglers that missed
    /// one (a lost Install otherwise leaves a member frozen in the old
    /// view with no retry path pointed at it).
    Heartbeat { from: usize, view_id: ViewId },
}

impl<P> Wire<P> {
    /// Simulated size in bytes of this message's *protocol overhead*
    /// (headers, clocks, control payloads) — the per-message cost the
    /// paper's §3.4 points at. Application payload bytes are accounted
    /// separately via [`crate::group::GroupConfig::payload_bytes`].
    pub fn overhead_bytes(&self) -> usize {
        const MSG_ID: usize = 12; // u32 sender + u64 seq
        match self {
            Wire::Data(d) => {
                let own = MSG_ID + d.vt_wire.len() + 1;
                let appended: usize = d
                    .appended
                    .iter()
                    .map(|a| MSG_ID + a.vt_wire.len() + 1)
                    .sum();
                own + appended
            }
            Wire::AckGossip { delivered, .. } => 4 + delivered.encode().len(),
            Wire::Nack { want, .. } => 4 + MSG_ID * want.len(),
            Wire::Order { .. } => 8 + MSG_ID,
            Wire::OrderNack { .. } => 4 + 16,
            Wire::Token { .. } => 16,
            Wire::TokenAck { .. } => 8,
            Wire::Flush { proposed, .. } => 12 + 8 * proposed.members.len(),
            Wire::FlushOk { delivered, .. } => 12 + delivered.encode().len(),
            Wire::Install { view, cut } => 8 + 8 * view.members.len() + cut.encode().len(),
            Wire::PcAck { .. } => 4 + 8 + 8,
            Wire::PcSkip { .. } => 4 + 8 + 8 + MSG_ID,
            Wire::Heartbeat { .. } => 4 + 8,
        }
    }

    /// Whether this is a control (non-data) message.
    pub fn is_control(&self) -> bool {
        !matches!(self, Wire::Data(_))
    }
}

/// Where an outbound wire message should go (member indices).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dest {
    /// Every group member except the sender.
    All,
    /// One specific member.
    One(usize),
}

/// An outbound message from an endpoint: destination plus wire payload.
pub type Out<P> = (Dest, Wire<P>);

/// A message delivered to the application, with the timing metadata the
/// false-causality experiment (T6) needs.
#[derive(Clone, Debug)]
pub struct Delivery<P> {
    /// Which multicast this is.
    pub id: MsgId,
    /// The payload.
    pub payload: P,
    /// When the message physically arrived at this endpoint.
    pub arrived_at: SimTime,
    /// When the ordering protocol released it to the application.
    pub delivered_at: SimTime,
    /// Global sequence number (total-order disciplines only).
    pub gseq: Option<u64>,
    /// Messages this delivery was held waiting for (empty if delivered on
    /// arrival). These are *potential-causality* waits; whether they were
    /// semantically necessary is an application-level question — the crux
    /// of the paper's "false causality" critique.
    pub waited_for: Vec<MsgId>,
}

impl<P> Delivery<P> {
    /// How long the ordering protocol held this message after arrival.
    pub fn hold_time(&self) -> SimDuration {
        self.delivered_at.saturating_since(self.arrived_at)
    }

    /// Whether the message was held at all.
    pub fn was_held(&self) -> bool {
        self.delivered_at > self.arrived_at
    }
}

/// Running statistics for one endpoint. All counters are cumulative for
/// the life of the endpoint.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EndpointStats {
    /// Multicasts submitted locally.
    pub sent: u64,
    /// Data messages received (including duplicates/retransmits).
    pub data_received: u64,
    /// Messages delivered to the application.
    pub delivered: u64,
    /// Deliveries that were held in the holdback queue.
    pub delivered_after_hold: u64,
    /// Total time messages spent held (sum over held deliveries).
    pub hold_time_total: SimDuration,
    /// Duplicates discarded.
    pub duplicates: u64,
    /// NACKs sent.
    pub nacks_sent: u64,
    /// Retransmissions served from the buffer.
    pub retransmits_served: u64,
    /// Ack-gossip messages sent.
    pub acks_sent: u64,
    /// Control bytes sent (everything but payloads).
    pub control_bytes: u64,
    /// Data overhead bytes sent (headers + clocks on data).
    pub data_overhead_bytes: u64,
    /// Current number of buffered (unstable) messages.
    pub buffered_now: u64,
    /// Current buffered bytes (payload + overhead).
    pub buffered_bytes_now: u64,
    /// High-water mark of buffered messages.
    pub buffered_peak: u64,
    /// High-water mark of buffered bytes.
    pub buffered_bytes_peak: u64,
    /// Current holdback-queue length.
    pub holdback_now: u64,
    /// High-water mark of the holdback queue.
    pub holdback_peak: u64,
    /// Messages garbage-collected as stable.
    pub stabilized: u64,
    /// Cumulative holdback structural work (entries examined by the scan
    /// implementation; registrations/promotions in the indexed one).
    pub holdback_work: u64,
    /// Wire events that touched the holdback queue (denominator for
    /// per-event work).
    pub holdback_events: u64,
    /// Data messages sent with a delta-encoded timestamp.
    pub ts_delta_sent: u64,
    /// Data messages sent with a full-encoded timestamp.
    pub ts_full_sent: u64,
    /// Received delta-encoded messages parked awaiting their decode base.
    pub ts_delta_parked: u64,
    /// Received messages whose timestamp failed to decode (malformed or
    /// wrong width) and were dropped for NACK-driven recovery.
    pub ts_decode_errors: u64,
    /// Data messages from a removed member beyond the flush cut, rejected
    /// to preserve virtual synchrony.
    pub rejected_removed: u64,
}

impl EndpointStats {
    /// Mean hold time over held deliveries.
    pub fn mean_hold(&self) -> SimDuration {
        match self
            .hold_time_total
            .as_micros()
            .checked_div(self.delivered_after_hold)
        {
            None => SimDuration::ZERO,
            Some(mean) => SimDuration::from_micros(mean),
        }
    }

    /// Fraction of deliveries that were held, in `[0,1]`.
    pub fn held_fraction(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.delivered_after_hold as f64 / self.delivered as f64
        }
    }

    pub(crate) fn note_buffer(&mut self, msgs: u64, bytes: u64) {
        self.buffered_now = msgs;
        self.buffered_bytes_now = bytes;
        self.buffered_peak = self.buffered_peak.max(msgs);
        self.buffered_bytes_peak = self.buffered_bytes_peak.max(bytes);
    }

    pub(crate) fn note_holdback(&mut self, len: u64) {
        self.holdback_now = len;
        self.holdback_peak = self.holdback_peak.max(len);
    }

    /// Mean holdback structural work per wire event that touched the
    /// queue — the T7+ scaling metric. For the scan implementation this
    /// grows with holdback size; for the indexed one it stays flat.
    pub fn holdback_work_per_event(&self) -> f64 {
        if self.holdback_events == 0 {
            0.0
        } else {
            self.holdback_work as f64 / self.holdback_events as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_scales_with_group_size() {
        let small = Wire::Data(DataMsg::new(
            MsgId { sender: 0, seq: 1 },
            VectorClock::new(4),
            (),
        ))
        .overhead_bytes();
        let large = Wire::Data(DataMsg::new(
            MsgId { sender: 0, seq: 1 },
            VectorClock::new(64),
            (),
        ))
        .overhead_bytes();
        assert!(large > small);
        assert_eq!(large - small, 8 * 60); // 60 extra u64 components
    }

    #[test]
    fn overhead_follows_the_wire_encoding() {
        // A delta-stamped message is charged for the delta bytes, not the
        // full vector it would otherwise carry.
        let mut base = VectorClock::new(64);
        base.set(0, 4);
        let mut next = base.clone();
        next.tick(0);
        let mut msg = DataMsg::new(MsgId { sender: 0, seq: 5 }, next.clone(), ());
        let full = Wire::Data(msg.clone()).overhead_bytes();
        msg.vt_wire = VtWire::Delta(next.encode_delta(&base));
        let delta = Wire::Data(msg.clone()).overhead_bytes();
        assert!(delta < full, "delta {delta} must undercut full {full}");
        // make_full restores the fallback encoding.
        msg.make_full();
        assert!(!msg.vt_wire.is_delta());
        assert_eq!(Wire::Data(msg).overhead_bytes(), full);
    }

    #[test]
    fn control_classification() {
        let data: Wire<()> = Wire::Data(DataMsg::new(
            MsgId { sender: 0, seq: 1 },
            VectorClock::new(2),
            (),
        ));
        assert!(!data.is_control());
        let hb: Wire<()> = Wire::Heartbeat {
            from: 0,
            view_id: ViewId(1),
        };
        assert!(hb.is_control());
    }

    #[test]
    fn delivery_hold_time() {
        let d = Delivery {
            id: MsgId { sender: 1, seq: 1 },
            payload: (),
            arrived_at: SimTime::from_millis(5),
            delivered_at: SimTime::from_millis(9),
            gseq: None,
            waited_for: vec![MsgId { sender: 0, seq: 3 }],
        };
        assert_eq!(d.hold_time(), SimDuration::from_millis(4));
        assert!(d.was_held());
    }

    #[test]
    fn stats_aggregation() {
        let mut s = EndpointStats::default();
        assert_eq!(s.mean_hold(), SimDuration::ZERO);
        assert_eq!(s.held_fraction(), 0.0);
        s.delivered = 10;
        s.delivered_after_hold = 5;
        s.hold_time_total = SimDuration::from_millis(50);
        assert_eq!(s.mean_hold(), SimDuration::from_millis(10));
        assert_eq!(s.held_fraction(), 0.5);
        s.note_buffer(7, 700);
        s.note_buffer(3, 300);
        assert_eq!(s.buffered_now, 3);
        assert_eq!(s.buffered_peak, 7);
        s.note_holdback(9);
        s.note_holdback(2);
        assert_eq!(s.holdback_peak, 9);
    }
}
