//! Latency-provenance ledger: per-message ordering-tax attribution.
//!
//! The paper's §5 cost argument is about *where* a delivered message's
//! end-to-end latency went: transit, holdback behind an irrelevant
//! predecessor, a reorder cursor, the total-order watermark, a token
//! rotation, or a view-change flush. The repo's wait-graph layer can say
//! *who* blocks a message; this module says *how much each cause
//! consumed*, exactly.
//!
//! [`LedgerProbe`] is a [`Probe`] fed by the same zero-cost seam the
//! flight recorder uses. Protocol endpoints emit [`ObsEvent::Wait`]
//! intervals when a wait *ends* (so there is no per-wait bookkeeping on
//! the hot path); the ledger tiles them — together with the send, first
//! wire arrival, and delivery stamps — into one [`LedgerEntry`] per
//! (receiver, message) whose phase segments sum *exactly* to the
//! send→deliver virtual-time latency (a proptest pins this: no gaps, no
//! double-counting). Attribution is purely observational: a probed run
//! is byte-identical to an unprobed one.
//!
//! The headline metric is the **ordering tax**: delivered latency minus
//! the FIFO-only floor for the same arrival pattern — what the ordering
//! discipline itself cost, over and above transit and per-sender FIFO
//! sequencing that even `fbcast` pays.

use simnet::metrics::Histogram;
use simnet::obs::{ObsEvent, PhaseEdge, PhaseKind, Probe, ProbeHandle, SpanId, Stage, WaitKind};
use simnet::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// An attribution phase — where one slice of a message's latency went.
/// Coarser than [`WaitKind`]: the two token-side waits (pre-send hold at
/// the origin, rotation wait at a receiver) both land in [`PhaseId::Token`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PhaseId {
    /// Wire transit: send to first arrival at the receiver.
    Wire,
    /// NACK repair in flight (the delivered copy was a retransmission,
    /// or the arrival-to-queue gap of a chased message).
    Repair,
    /// Holdback wait on a causal predecessor from another sender.
    Causal,
    /// Holdback wait on an earlier message from the same sender.
    Fifo,
    /// pccast per-link reorder-cursor wait.
    Reorder,
    /// abcast order-watermark wait (causally delivered, not yet released).
    Order,
    /// Token wait: pre-send hold at the origin or rotation wait here.
    Token,
    /// View-change flush/install barrier.
    Flush,
}

impl PhaseId {
    /// Every phase, in display order.
    pub const ALL: [PhaseId; 8] = [
        PhaseId::Wire,
        PhaseId::Repair,
        PhaseId::Causal,
        PhaseId::Fifo,
        PhaseId::Reorder,
        PhaseId::Order,
        PhaseId::Token,
        PhaseId::Flush,
    ];

    /// Stable lowercase name, used in tables and BENCH metric names.
    pub fn name(self) -> &'static str {
        match self {
            PhaseId::Wire => "wire",
            PhaseId::Repair => "repair",
            PhaseId::Causal => "causal",
            PhaseId::Fifo => "fifo",
            PhaseId::Reorder => "reorder",
            PhaseId::Order => "order",
            PhaseId::Token => "token",
            PhaseId::Flush => "flush",
        }
    }

    /// The phase a [`WaitKind`] is attributed to.
    pub fn from_wait(kind: WaitKind) -> PhaseId {
        match kind {
            WaitKind::CausalDep => PhaseId::Causal,
            WaitKind::FifoGap => PhaseId::Fifo,
            WaitKind::NackRepair => PhaseId::Repair,
            WaitKind::LinkReorder => PhaseId::Reorder,
            WaitKind::OrderWatermark => PhaseId::Order,
            WaitKind::TokenRotation | WaitKind::TokenHold => PhaseId::Token,
            WaitKind::FlushBarrier => PhaseId::Flush,
        }
    }
}

impl fmt::Display for PhaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One attributed slice `[from, to)` of a message's latency at a receiver.
#[derive(Clone, Debug)]
pub struct Segment {
    /// Where this slice went.
    pub phase: PhaseId,
    /// Slice start.
    pub from: SimTime,
    /// Slice end (exclusive).
    pub to: SimTime,
    /// The message whose delivery/arrival ended the wait, when known.
    pub blocker: Option<SpanId>,
    /// Free-form detail carried from the emitting endpoint.
    pub note: String,
}

impl Segment {
    /// Slice duration.
    pub fn dur(&self) -> SimDuration {
        self.to.saturating_since(self.from)
    }
}

/// The ledger line for one message at one receiver: an exact tiling of
/// `[send_at, end)` into attributed [`Segment`]s.
#[derive(Clone, Debug)]
pub struct LedgerEntry {
    /// The receiving member.
    pub receiver: usize,
    /// The message.
    pub span: SpanId,
    /// When the origin submitted it.
    pub send_at: SimTime,
    /// Delivery time — or the horizon, for entries still open then.
    pub end: SimTime,
    /// Whether the message was still undelivered at the horizon (open
    /// entries are shown in drill-downs but excluded from histograms and
    /// the ordering tax).
    pub open: bool,
    /// The phase tiling. Empty iff latency is zero.
    pub segments: Vec<Segment>,
    /// Ordering tax: latency minus the FIFO-only floor for the same
    /// arrivals (zero for open entries).
    pub tax: SimDuration,
}

impl LedgerEntry {
    /// End-to-end virtual-time latency (send to deliver, or to the
    /// horizon while open).
    pub fn latency(&self) -> SimDuration {
        self.end.saturating_since(self.send_at)
    }

    /// Total time per phase across this entry's segments.
    pub fn phase_totals(&self) -> BTreeMap<PhaseId, SimDuration> {
        let mut totals: BTreeMap<PhaseId, SimDuration> = BTreeMap::new();
        for s in &self.segments {
            let t = totals.entry(s.phase).or_insert(SimDuration(0));
            t.0 += s.dur().0;
        }
        totals
    }

    /// The single phase that consumed the most of this entry's latency —
    /// the critical path of its wait. `None` when latency is zero.
    pub fn critical_path(&self) -> Option<PhaseId> {
        self.phase_totals()
            .into_iter()
            .filter(|(_, d)| d.0 > 0)
            // max_by_key keeps the *last* max; iterate phases in display
            // order and prefer the earliest on ties deterministically.
            .fold(
                None,
                |best: Option<(PhaseId, SimDuration)>, (p, d)| match best {
                    Some((_, bd)) if bd.0 >= d.0 => best,
                    _ => Some((p, d)),
                },
            )
            .map(|(p, _)| p)
    }
}

#[derive(Debug, Default)]
struct RecvRec {
    first_wire: Option<SimTime>,
    /// The first wire copy seen here was a NACK retransmission — the
    /// pre-arrival interval is repair, not transit.
    wire_retransmit: bool,
    /// A delta copy was parked undecoded here (arrival-to-queue gaps are
    /// then FIFO waits on the decode base, not repair).
    parked: bool,
    /// The message demonstrably entered a queue here (holdback, reorder
    /// buffer, parked) — an undelivered rec without evidence is a
    /// dropped duplicate, not an open entry.
    held_evidence: bool,
    delivered_at: Option<SimTime>,
    waits: Vec<WaitSeg>,
}

#[derive(Debug)]
struct WaitSeg {
    kind: WaitKind,
    since: SimTime,
    at: SimTime,
    blocker: Option<SpanId>,
    note: String,
}

/// The always-on probe that accumulates ledger state. Install it (alone
/// or behind a [`TeeProbe`]) and call [`LedgerProbe::finalize`] at the
/// horizon.
#[derive(Debug, Default)]
pub struct LedgerProbe {
    send_at: BTreeMap<SpanId, SimTime>,
    /// Pre-send token holds at the origin, `[since, at)` — they apply to
    /// every receiver of the span.
    origin_holds: BTreeMap<SpanId, Vec<(SimTime, SimTime)>>,
    recs: BTreeMap<(usize, SpanId), RecvRec>,
    /// Processes currently frozen by a flush, and since when — open
    /// entries at the horizon charge `[frozen_since, horizon)` to the
    /// flush barrier.
    frozen_since: BTreeMap<usize, SimTime>,
    // Live counters for the 50 ms `ts.latency.*` cadence.
    closed: u64,
    latency_sum_us: u64,
    open_held: u64,
}

impl LedgerProbe {
    /// Fresh, empty ledger.
    pub fn new() -> Self {
        LedgerProbe::default()
    }

    /// Delivered (receiver, message) entries so far.
    pub fn live_delivered(&self) -> u64 {
        self.closed
    }

    /// Entries with queue evidence but no delivery yet.
    pub fn live_open(&self) -> u64 {
        self.open_held
    }

    /// Mean delivered latency so far, in microseconds.
    pub fn live_mean_us(&self) -> f64 {
        if self.closed == 0 {
            0.0
        } else {
            self.latency_sum_us as f64 / self.closed as f64
        }
    }

    fn rec(&mut self, who: usize, span: SpanId) -> &mut RecvRec {
        self.recs.entry((who, span)).or_default()
    }

    fn note_evidence(&mut self, who: usize, span: SpanId) {
        let r = self.recs.entry((who, span)).or_default();
        if !r.held_evidence && r.delivered_at.is_none() {
            r.held_evidence = true;
            self.open_held += 1;
        } else {
            r.held_evidence = true;
        }
    }

    /// Folds one event into the ledger. [`Probe::record`] delegates here;
    /// tee arrangements can call it directly.
    pub fn fold(&mut self, ev: &ObsEvent) {
        match ev {
            ObsEvent::Span {
                at,
                who,
                span,
                stage,
                note,
            } => match stage {
                Stage::Send => {
                    self.send_at.entry(*span).or_insert(*at);
                }
                Stage::Wire => {
                    let r = self.rec(*who, *span);
                    if r.first_wire.is_none() {
                        r.first_wire = Some(*at);
                        r.wire_retransmit = note.contains("retransmit");
                    }
                }
                Stage::Parked => {
                    self.rec(*who, *span).parked = true;
                    self.note_evidence(*who, *span);
                }
                Stage::HoldbackEnter | Stage::ReorderEnter => {
                    self.note_evidence(*who, *span);
                }
                Stage::Delivered => {
                    let r = self.recs.entry((*who, *span)).or_default();
                    let prev = r.delivered_at.replace(*at);
                    if prev.is_none() && r.held_evidence {
                        self.open_held = self.open_held.saturating_sub(1);
                    }
                    if let Some(&send) = self.send_at.get(span) {
                        let lat = at.saturating_since(send).0;
                        match prev {
                            // abcast re-stamps delivery at release: the
                            // later stamp supersedes the causal one.
                            Some(p) => {
                                self.latency_sum_us = self
                                    .latency_sum_us
                                    .saturating_sub(p.saturating_since(send).0)
                                    .saturating_add(lat);
                            }
                            None => {
                                self.closed += 1;
                                self.latency_sum_us = self.latency_sum_us.saturating_add(lat);
                            }
                        }
                    } else if prev.is_none() {
                        self.closed += 1;
                    }
                }
                Stage::Deliverable | Stage::Dropped | Stage::SkipConsume => {}
            },
            ObsEvent::Phase {
                at,
                who,
                kind: PhaseKind::Flush,
                edge,
                ..
            } => match edge {
                PhaseEdge::Begin => {
                    self.frozen_since.entry(*who).or_insert(*at);
                }
                PhaseEdge::End => {
                    self.frozen_since.remove(who);
                }
                PhaseEdge::Point => {}
            },
            ObsEvent::Phase { .. } => {}
            ObsEvent::Wait {
                at,
                who,
                span,
                kind,
                since,
                blocker,
                note,
            } => {
                if *kind == WaitKind::TokenHold {
                    // Origin-side pre-send hold: applies to all receivers.
                    self.origin_holds
                        .entry(*span)
                        .or_default()
                        .push((*since, *at));
                } else {
                    self.rec(*who, *span).waits.push(WaitSeg {
                        kind: *kind,
                        since: *since,
                        at: *at,
                        blocker: *blocker,
                        note: note.clone(),
                    });
                    self.note_evidence(*who, *span);
                }
            }
        }
    }

    /// Builds the final per-message attribution at `horizon`.
    pub fn finalize(&self, horizon: SimTime) -> LatencySummary {
        let mut entries: Vec<LedgerEntry> = Vec::new();
        for ((receiver, span), r) in &self.recs {
            let Some(&send) = self.send_at.get(span) else {
                continue;
            };
            let open = r.delivered_at.is_none();
            if open && !r.held_evidence {
                // A wire copy that was dropped (duplicate, beyond-cut)
                // without ever entering a queue — not a latency story.
                continue;
            }
            let end = r.delivered_at.unwrap_or(horizon);
            let mut segments: Vec<Segment> = Vec::new();
            let mut cursor = send;
            // Clip every incoming slice to `[cursor, end)`: overlapping
            // claims (e.g. a token holder's own-message release wait
            // re-claiming its submit-queue hold) collapse structurally,
            // which is what makes the tiling exact by construction.
            let push = |segments: &mut Vec<Segment>,
                        cursor: &mut SimTime,
                        phase: PhaseId,
                        from: SimTime,
                        to: SimTime,
                        blocker: Option<SpanId>,
                        note: &str| {
                let from = from.max(*cursor);
                let to = to.min(end);
                if to > from {
                    segments.push(Segment {
                        phase,
                        from,
                        to,
                        blocker,
                        note: note.to_string(),
                    });
                    *cursor = to;
                }
            };
            if let Some(holds) = self.origin_holds.get(span) {
                let mut holds = holds.clone();
                holds.sort_unstable();
                for (since, at) in holds {
                    push(
                        &mut segments,
                        &mut cursor,
                        PhaseId::Token,
                        since,
                        at,
                        None,
                        "queued at origin awaiting the token",
                    );
                }
            }
            if let Some(wire) = r.first_wire {
                let (phase, note) = if r.wire_retransmit {
                    (PhaseId::Repair, "first copy here was a retransmission")
                } else {
                    (PhaseId::Wire, "")
                };
                push(
                    &mut segments,
                    &mut cursor,
                    phase,
                    SimTime::ZERO,
                    wire,
                    None,
                    note,
                );
            }
            // Arrival-to-queue gaps (a parked delta waiting for its
            // decode base, or a chased message re-entering late) are
            // attributed by the evidence at this receiver.
            let gap_phase = if r.parked {
                PhaseId::Fifo
            } else {
                PhaseId::Repair
            };
            for w in &r.waits {
                if w.since > cursor {
                    push(
                        &mut segments,
                        &mut cursor,
                        gap_phase,
                        SimTime::ZERO,
                        w.since,
                        None,
                        if r.parked {
                            "parked awaiting its delta decode base"
                        } else {
                            "arrival-to-queue gap (repair in flight)"
                        },
                    );
                }
                push(
                    &mut segments,
                    &mut cursor,
                    PhaseId::from_wait(w.kind),
                    w.since,
                    w.at,
                    w.blocker,
                    &w.note,
                );
            }
            if end > cursor {
                if open {
                    // Still held at the horizon: charge the frozen tail
                    // (if this receiver is mid-flush) to the barrier and
                    // the rest to the queue evidence we have.
                    let fs = self.frozen_since.get(receiver).copied();
                    let open_phase = if r.parked {
                        PhaseId::Fifo
                    } else {
                        PhaseId::Causal
                    };
                    if let Some(fs) = fs {
                        if fs > cursor {
                            push(
                                &mut segments,
                                &mut cursor,
                                open_phase,
                                SimTime::ZERO,
                                fs,
                                None,
                                "still held at the horizon",
                            );
                        }
                        push(
                            &mut segments,
                            &mut cursor,
                            PhaseId::Flush,
                            SimTime::ZERO,
                            end,
                            None,
                            "delivery frozen by an unfinished flush",
                        );
                    } else {
                        push(
                            &mut segments,
                            &mut cursor,
                            open_phase,
                            SimTime::ZERO,
                            end,
                            None,
                            "still held at the horizon",
                        );
                    }
                } else {
                    push(
                        &mut segments,
                        &mut cursor,
                        gap_phase,
                        SimTime::ZERO,
                        end,
                        None,
                        "unattributed residual",
                    );
                }
            }
            entries.push(LedgerEntry {
                receiver: *receiver,
                span: *span,
                send_at: send,
                end,
                open,
                segments,
                tax: SimDuration(0),
            });
        }
        entries.sort_by_key(|e| (e.span, e.receiver));

        // Ordering tax: the FIFO-only floor for a delivery is the latest
        // first-arrival among the sender's messages up to and including
        // this one (per receiver) — the earliest a FIFO-only discipline
        // could have delivered it given the same arrivals. Delivery is
        // FIFO per sender in every discipline, so a per-(receiver,
        // sender) running max over seq order is exact and O(1) amortized.
        let mut floor: BTreeMap<(usize, usize), SimTime> = BTreeMap::new();
        let mut by_sender: Vec<&mut LedgerEntry> = entries.iter_mut().collect();
        by_sender.sort_by_key(|e| (e.receiver, e.span.origin, e.span.seq));
        for e in by_sender {
            if e.open {
                continue;
            }
            let arrival = e
                .segments
                .iter()
                .find(|s| matches!(s.phase, PhaseId::Wire | PhaseId::Repair))
                .map(|s| s.to)
                .unwrap_or(e.send_at);
            let f = floor.entry((e.receiver, e.span.origin)).or_insert(arrival);
            *f = (*f).max(arrival);
            e.tax = e.end.saturating_since(*f);
        }

        let mut summary = LatencySummary::default();
        for e in &entries {
            if e.open {
                summary.open += 1;
                continue;
            }
            summary.latency.record(e.latency());
            summary.tax.record(e.tax);
            for (phase, d) in e.phase_totals() {
                summary.per_phase.entry(phase).or_default().record(d);
            }
            if let Some(p) = e.critical_path() {
                *summary.critical.entry(p).or_insert(0) += 1;
            }
        }
        summary.entries = entries;
        summary
    }
}

impl Probe for LedgerProbe {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ev: ObsEvent) {
        self.fold(&ev);
    }
}

/// Duplicates every event to an (optional) downstream probe — the chaos
/// flight recorder — while folding it into an owned [`LedgerProbe`].
/// Always enabled, so the campaign runner can keep one installation path
/// whether or not a recorder is attached; determinism is untouched
/// because probes never feed back into protocol state.
pub struct TeeProbe {
    /// The ledger every event folds into.
    pub ledger: LedgerProbe,
    inner: ProbeHandle,
}

impl TeeProbe {
    /// Tees into `inner` (pass `ProbeHandle::none()` for ledger-only).
    pub fn new(inner: ProbeHandle) -> Self {
        TeeProbe {
            ledger: LedgerProbe::new(),
            inner,
        }
    }
}

impl Probe for TeeProbe {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ev: ObsEvent) {
        self.inner.emit(|| ev.clone());
        self.ledger.fold(&ev);
    }
}

/// The finalized campaign-wide attribution: every ledger entry, plus
/// per-phase, whole-latency and ordering-tax histograms over the closed
/// (delivered) entries. Digest-excluded everywhere it rides along.
#[derive(Clone, Debug, Default)]
pub struct LatencySummary {
    /// Every (receiver, message) entry, sorted by (span, receiver).
    pub entries: Vec<LedgerEntry>,
    /// Per-phase time histograms (one sample per entry that spent time
    /// in the phase).
    pub per_phase: BTreeMap<PhaseId, Histogram>,
    /// End-to-end delivered latency.
    pub latency: Histogram,
    /// Ordering tax per delivered entry.
    pub tax: Histogram,
    /// How often each phase was an entry's critical path.
    pub critical: BTreeMap<PhaseId, u64>,
    /// Entries still undelivered at the horizon.
    pub open: usize,
}

impl LatencySummary {
    /// The entry for `span` at `receiver`, if the ledger has one.
    pub fn entry(&self, receiver: usize, span: SpanId) -> Option<&LedgerEntry> {
        self.entries
            .iter()
            .find(|e| e.receiver == receiver && e.span == span)
    }

    /// All entries for one message, across receivers.
    pub fn for_span(&self, span: SpanId) -> impl Iterator<Item = &LedgerEntry> {
        self.entries.iter().filter(move |e| e.span == span)
    }

    /// Mean ordering tax over delivered entries, in microseconds.
    pub fn tax_mean_us(&self) -> f64 {
        if self.tax.count() == 0 {
            0.0
        } else {
            self.tax.sum_micros() as f64 / self.tax.count() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(origin: usize, seq: u64) -> SpanId {
        SpanId { origin, seq }
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn send(l: &mut LedgerProbe, at: u64, who: usize, s: SpanId) {
        l.fold(&ObsEvent::Span {
            at: t(at),
            who,
            span: s,
            stage: Stage::Send,
            note: String::new(),
        });
    }

    fn wire(l: &mut LedgerProbe, at: u64, who: usize, s: SpanId) {
        l.fold(&ObsEvent::Span {
            at: t(at),
            who,
            span: s,
            stage: Stage::Wire,
            note: String::new(),
        });
    }

    fn delivered(l: &mut LedgerProbe, at: u64, who: usize, s: SpanId) {
        l.fold(&ObsEvent::Span {
            at: t(at),
            who,
            span: s,
            stage: Stage::Delivered,
            note: String::new(),
        });
    }

    fn wait(l: &mut LedgerProbe, who: usize, s: SpanId, kind: WaitKind, since: u64, at: u64) {
        l.fold(&ObsEvent::Wait {
            at: t(at),
            who,
            span: s,
            kind,
            since: t(since),
            blocker: None,
            note: String::new(),
        });
    }

    #[test]
    fn wire_only_delivery_tiles_to_transit() {
        let mut l = LedgerProbe::new();
        let m = span(0, 1);
        send(&mut l, 10, 0, m);
        wire(&mut l, 25, 1, m);
        delivered(&mut l, 25, 1, m);
        let s = l.finalize(t(1000));
        assert_eq!(s.entries.len(), 1);
        let e = &s.entries[0];
        assert_eq!(e.latency(), SimDuration(15));
        assert_eq!(e.segments.len(), 1);
        assert_eq!(e.segments[0].phase, PhaseId::Wire);
        assert_eq!(e.tax, SimDuration(0), "FIFO floor equals own arrival");
        assert_eq!(e.critical_path(), Some(PhaseId::Wire));
    }

    #[test]
    fn causal_wait_and_tax_attribute_exactly() {
        let mut l = LedgerProbe::new();
        let m = span(0, 1);
        send(&mut l, 0, 0, m);
        wire(&mut l, 20, 1, m);
        wait(&mut l, 1, m, WaitKind::CausalDep, 20, 90);
        delivered(&mut l, 90, 1, m);
        let s = l.finalize(t(1000));
        let e = &s.entries[0];
        let sum: u64 = e.segments.iter().map(|s| s.dur().0).sum();
        assert_eq!(sum, e.latency().0, "exact tiling");
        assert_eq!(e.critical_path(), Some(PhaseId::Causal));
        // FIFO floor = own arrival at 20; tax = 90 - 20.
        assert_eq!(e.tax, SimDuration(70));
    }

    #[test]
    fn token_origin_hold_clips_against_release_wait() {
        // The holder's own message: submitted at 0, token arrives and
        // drains at 40, released at 40. The release wait re-claims
        // [0, 40) but the origin hold already owns it — clipping must
        // collapse the duplicate claim.
        let mut l = LedgerProbe::new();
        let m = span(2, 1);
        send(&mut l, 0, 2, m);
        l.fold(&ObsEvent::Wait {
            at: t(40),
            who: 2,
            span: m,
            kind: WaitKind::TokenHold,
            since: t(0),
            blocker: None,
            note: String::new(),
        });
        wait(&mut l, 2, m, WaitKind::TokenRotation, 0, 40);
        delivered(&mut l, 40, 2, m);
        let s = l.finalize(t(1000));
        let e = &s.entries[0];
        let sum: u64 = e.segments.iter().map(|s| s.dur().0).sum();
        assert_eq!(sum, 40, "no double-counting");
        assert_eq!(e.segments.len(), 1);
        assert_eq!(e.segments[0].phase, PhaseId::Token);
    }

    #[test]
    fn open_entry_at_frozen_receiver_charges_the_flush_barrier() {
        let mut l = LedgerProbe::new();
        let m = span(4, 33);
        send(&mut l, 100, 4, m);
        wire(&mut l, 120, 0, m);
        l.fold(&ObsEvent::Span {
            at: t(120),
            who: 0,
            span: m,
            stage: Stage::HoldbackEnter,
            note: String::new(),
        });
        l.fold(&ObsEvent::Phase {
            at: t(200),
            who: 0,
            kind: PhaseKind::Flush,
            edge: PhaseEdge::Begin,
            note: String::new(),
        });
        let s = l.finalize(t(5_000_000));
        assert_eq!(s.open, 1);
        let e = &s.entries[0];
        assert!(e.open);
        let totals = e.phase_totals();
        let flush = totals
            .get(&PhaseId::Flush)
            .copied()
            .unwrap_or(SimDuration(0));
        assert!(
            flush.0 as f64 >= 0.9 * e.latency().0 as f64,
            "flush dominates: {totals:?}"
        );
        assert_eq!(e.critical_path(), Some(PhaseId::Flush));
        let sum: u64 = e.segments.iter().map(|s| s.dur().0).sum();
        assert_eq!(sum, e.latency().0);
    }

    #[test]
    fn abcast_release_restamps_delivery() {
        let mut l = LedgerProbe::new();
        let m = span(1, 1);
        send(&mut l, 0, 1, m);
        wire(&mut l, 10, 0, m);
        delivered(&mut l, 10, 0, m); // causal delivery
        wait(&mut l, 0, m, WaitKind::OrderWatermark, 10, 55);
        delivered(&mut l, 55, 0, m); // release
        let s = l.finalize(t(1000));
        let e = &s.entries[0];
        assert_eq!(e.end, t(55));
        let totals = e.phase_totals();
        assert_eq!(totals[&PhaseId::Wire], SimDuration(10));
        assert_eq!(totals[&PhaseId::Order], SimDuration(45));
        assert_eq!(e.critical_path(), Some(PhaseId::Order));
        assert_eq!(l.live_delivered(), 1, "restamp is not a second entry");
    }

    #[test]
    fn dropped_duplicate_without_queue_evidence_is_ignored() {
        let mut l = LedgerProbe::new();
        let m = span(0, 7);
        send(&mut l, 0, 0, m);
        wire(&mut l, 30, 2, m); // dup copy, dropped by the endpoint
        let s = l.finalize(t(1000));
        assert!(s.entries.is_empty());
        assert_eq!(s.open, 0);
    }

    #[test]
    fn parked_gap_is_attributed_to_the_decode_base() {
        let mut l = LedgerProbe::new();
        let m = span(3, 5);
        send(&mut l, 0, 3, m);
        wire(&mut l, 10, 1, m);
        l.fold(&ObsEvent::Span {
            at: t(10),
            who: 1,
            span: m,
            stage: Stage::Parked,
            note: String::new(),
        });
        // Decoded at 60, held until 80 on a causal dep.
        wait(&mut l, 1, m, WaitKind::CausalDep, 60, 80);
        delivered(&mut l, 80, 1, m);
        let s = l.finalize(t(1000));
        let e = &s.entries[0];
        let totals = e.phase_totals();
        assert_eq!(totals[&PhaseId::Wire], SimDuration(10));
        assert_eq!(totals[&PhaseId::Fifo], SimDuration(50), "parked gap");
        assert_eq!(totals[&PhaseId::Causal], SimDuration(20));
        let sum: u64 = e.segments.iter().map(|s| s.dur().0).sum();
        assert_eq!(sum, e.latency().0);
    }
}
