//! # catocs — the system under critique
//!
//! A faithful, full implementation of "causally and totally ordered
//! communication support" (CATOCS) in the style of the ISIS toolkit the
//! paper argues against:
//!
//! - [`fbcast`] — FIFO multicast (per-sender ordering), the baseline.
//! - [`cbcast`] — causal multicast: vector-clock timestamps, holdback
//!   queues, NACK-based recovery from the message buffer, piggybacked or
//!   explicit acknowledgement gossip (\[Birman, Schiper, Stephenson '91\]).
//! - [`abcast`] — totally ordered multicast via a fixed sequencer, plus a
//!   token-ring variant in [`token`] for the ablation study.
//! - [`stability`] — message-stability tracking (matrix clock) and the
//!   buffer accounting that experiment T5 measures (§5's quadratic-growth
//!   argument).
//! - [`causal_graph`] — the "active causal graph" of §5: unstable
//!   messages as nodes, potential-causality arcs, measured live.
//! - [`domain`] — causal domains (§5): cross-group causality via the
//!   conservative everyone-sees-everything scheme, with the filtered
//!   overhead measurable.
//! - [`failure`] — heartbeat failure detection.
//! - [`membership`] — view-synchronous membership with a flush protocol;
//!   exposes the send-blackout window the paper calls out.
//! - [`safety`] — Deceit-style "write safety level k" tracking (§4.4):
//!   how many acks a cbcast must collect before it counts as safe.
//! - [`endpoint`] — a unified endpoint facade over the four multicast
//!   disciplines, plus a [`simnet`] glue node ([`harness`]) for pure
//!   group workloads.
//!
//! ## Semantics implemented (per the paper's §2)
//!
//! - *Causal delivery*: if `send(m1) → send(m2)` (happens-before on
//!   message events), every group member delivers `m1` before `m2`.
//! - *Total order*: all members deliver the same sequence (abcast).
//! - *Atomicity (non-durable)*: messages are buffered until stable so a
//!   receiver can fetch missing causal predecessors from any later
//!   sender; delivery is all-or-nothing at surviving members, but — as
//!   the paper stresses — *not durable* across sender failure.
//! - *Ordered failure notification*: view changes are delivered in order
//!   with respect to message traffic (virtual synchrony).

pub mod abcast;
pub mod causal_graph;
pub mod cbcast;
pub mod domain;
pub mod endpoint;
pub mod failure;
pub mod fbcast;
pub mod group;
pub mod harness;
pub mod holdback;
pub mod ledger;
pub mod membership;
pub mod pccast;
pub mod safety;
pub mod stability;
pub mod token;
pub mod vsync;
pub mod waitgraph;
pub mod wire;

pub use cbcast::CbcastEndpoint;
pub use endpoint::{Discipline, Endpoint};
pub use group::{GroupConfig, MsgId, View, ViewId};
pub use wire::{Delivery, EndpointStats, Wire};
