//! A unified facade over the four multicast disciplines.
//!
//! Experiments sweep over disciplines ("same workload, different ordering
//! guarantee"), so a single type that can be any of FIFO, causal,
//! sequencer-total or token-total keeps the harness code honest: the only
//! thing that changes between runs is the [`Discipline`].

use crate::abcast::AbcastEndpoint;
use crate::cbcast::{BlockedReport, CbcastEndpoint};
use crate::fbcast::FbcastEndpoint;
use crate::group::{CausalDiscipline, GroupConfig};
use crate::pccast::PccastEndpoint;
use crate::token::TokenAbcastEndpoint;
use crate::wire::{Delivery, EndpointStats, Out, Wire};
use clocks::vector::VectorClock;
use simnet::obs::ProbeHandle;
use simnet::time::SimTime;

/// Which ordering guarantee an endpoint provides.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Discipline {
    /// Per-sender FIFO only (the conventional-transport baseline).
    Fifo,
    /// Causal (happens-before) delivery — cbcast.
    Causal,
    /// Total order via a fixed sequencer — abcast.
    Total { sequencer: usize },
    /// Total order via a rotating token.
    TotalToken,
}

impl Discipline {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Discipline::Fifo => "fifo",
            Discipline::Causal => "causal",
            Discipline::Total { .. } => "total-seq",
            Discipline::TotalToken => "total-token",
        }
    }
}

/// A causal endpoint running either causal-delivery algorithm, selected
/// by [`GroupConfig::discipline`]: vector-timestamp cbcast or
/// constant-metadata pccast. Everything above this facade — harnesses,
/// chaos campaigns, probes, telemetry — is algorithm-agnostic, which is
/// what lets the equivalence proptests and the invariant checker run
/// unchanged against both.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum CausalEndpoint<P> {
    /// ISIS-style vector-timestamp cbcast.
    Cbcast(CbcastEndpoint<P>),
    /// PC-broadcast-style constant-metadata pccast.
    Pccast(PccastEndpoint<P>),
}

impl<P: Clone> CausalEndpoint<P> {
    /// Creates the endpoint for member `me` of a group of `n`, running
    /// the algorithm named by `cfg.discipline`.
    pub fn new(me: usize, n: usize, cfg: GroupConfig) -> Self {
        match cfg.discipline {
            CausalDiscipline::Cbcast => CausalEndpoint::Cbcast(CbcastEndpoint::new(me, n, cfg)),
            CausalDiscipline::Pccast => CausalEndpoint::Pccast(PccastEndpoint::new(me, n, cfg)),
        }
    }

    /// Which algorithm this endpoint runs.
    pub fn causal_discipline(&self) -> CausalDiscipline {
        match self {
            CausalEndpoint::Cbcast(_) => CausalDiscipline::Cbcast,
            CausalEndpoint::Pccast(_) => CausalDiscipline::Pccast,
        }
    }

    /// Installs an observability probe (read-only).
    pub fn set_probe(&mut self, probe: ProbeHandle) {
        match self {
            CausalEndpoint::Cbcast(e) => e.set_probe(probe),
            CausalEndpoint::Pccast(e) => e.set_probe(probe),
        }
    }

    /// Bug-injection knob: skip the delta decode-chain reset at view
    /// install. Meaningful only for cbcast; pccast has no decode chains,
    /// so this is a no-op there.
    pub fn debug_skip_view_reset(&mut self, on: bool) {
        if let CausalEndpoint::Cbcast(e) = self {
            e.debug_skip_view_reset(on);
        }
    }

    /// Suspends delivery until the next view install (flush blackout).
    pub fn freeze(&mut self, now: SimTime) {
        match self {
            CausalEndpoint::Cbcast(e) => e.freeze(now),
            CausalEndpoint::Pccast(e) => e.freeze(now),
        }
    }

    /// Whether delivery is frozen by a flush in progress.
    pub fn is_frozen(&self) -> bool {
        match self {
            CausalEndpoint::Cbcast(e) => e.is_frozen(),
            CausalEndpoint::Pccast(e) => e.is_frozen(),
        }
    }

    /// This member's index.
    pub fn me(&self) -> usize {
        match self {
            CausalEndpoint::Cbcast(e) => e.me(),
            CausalEndpoint::Pccast(e) => e.me(),
        }
    }

    /// Group size.
    pub fn group_size(&self) -> usize {
        match self {
            CausalEndpoint::Cbcast(e) => e.group_size(),
            CausalEndpoint::Pccast(e) => e.group_size(),
        }
    }

    /// The delivered vector clock.
    pub fn clock(&self) -> &VectorClock {
        match self {
            CausalEndpoint::Cbcast(e) => e.clock(),
            CausalEndpoint::Pccast(e) => e.clock(),
        }
    }

    /// Endpoint statistics.
    pub fn stats(&self) -> &EndpointStats {
        match self {
            CausalEndpoint::Cbcast(e) => e.stats(),
            CausalEndpoint::Pccast(e) => e.stats(),
        }
    }

    /// Number of unstable messages currently buffered.
    pub fn buffered_len(&self) -> usize {
        match self {
            CausalEndpoint::Cbcast(e) => e.buffered_len(),
            CausalEndpoint::Pccast(e) => e.buffered_len(),
        }
    }

    /// Current holdback-queue length.
    pub fn holdback_len(&self) -> usize {
        match self {
            CausalEndpoint::Cbcast(e) => e.holdback_len(),
            CausalEndpoint::Pccast(e) => e.holdback_len(),
        }
    }

    /// Messages parked awaiting a delta decode base (cbcast only; pccast
    /// buffers per link instead and never parks).
    pub fn parked_len(&self) -> usize {
        match self {
            CausalEndpoint::Cbcast(e) => e.parked_len(),
            CausalEndpoint::Pccast(e) => e.parked_len(),
        }
    }

    /// Retransmits every unstable buffered message with full timestamps.
    pub fn flush_unstable(&mut self) -> Vec<Out<P>> {
        match self {
            CausalEndpoint::Cbcast(e) => e.flush_unstable(),
            CausalEndpoint::Pccast(e) => e.flush_unstable(),
        }
    }

    /// The group-wide stable frontier.
    pub fn stable_frontier(&self) -> VectorClock {
        match self {
            CausalEndpoint::Cbcast(e) => e.stable_frontier(),
            CausalEndpoint::Pccast(e) => e.stable_frontier(),
        }
    }

    /// Componentwise stability-horizon lag.
    pub fn stability_lag(&self) -> u64 {
        match self {
            CausalEndpoint::Cbcast(e) => e.stability_lag(),
            CausalEndpoint::Pccast(e) => e.stability_lag(),
        }
    }

    /// Telemetry gauges, prefixed `cbcast.` or `pccast.` per algorithm.
    pub fn sample(&self, emit: &mut dyn FnMut(&str, f64)) {
        match self {
            CausalEndpoint::Cbcast(e) => e.sample(emit),
            CausalEndpoint::Pccast(e) => e.sample(emit),
        }
    }

    /// Blocked-on explanation of the holdback queue.
    pub fn blocked_report(&self) -> Vec<BlockedReport> {
        match self {
            CausalEndpoint::Cbcast(e) => e.blocked_report(),
            CausalEndpoint::Pccast(e) => e.blocked_report(),
        }
    }

    /// Contributes this endpoint's live blocking edges to a wait-graph
    /// snapshot (read-only; see [`crate::waitgraph`]).
    pub fn wait_edges(&self, out: &mut Vec<crate::waitgraph::WaitEdge>) {
        match self {
            CausalEndpoint::Cbcast(e) => e.wait_edges(out),
            CausalEndpoint::Pccast(e) => e.wait_edges(out),
        }
    }

    /// Resolves a link-slot position against the sender-side ARQ log;
    /// only meaningful for pccast (cbcast has no links).
    pub fn link_log_lookup(&self, to: usize, seq: u64) -> Option<crate::group::MsgId> {
        match self {
            CausalEndpoint::Cbcast(_) => None,
            CausalEndpoint::Pccast(e) => e.link_log_lookup(to, seq),
        }
    }

    /// Applies an installed view. `view_id` is the installed view's id —
    /// pccast uses it as the link epoch; cbcast does not need it.
    /// Returns thawed deliveries plus any outbound messages (pccast must
    /// forward thawed deliveries on its fresh links; cbcast emits none).
    pub fn on_view_install(
        &mut self,
        now: SimTime,
        view_id: u64,
        members: &[usize],
        cut: &VectorClock,
    ) -> (Vec<Delivery<P>>, Vec<Out<P>>) {
        match self {
            CausalEndpoint::Cbcast(e) => (e.on_view_install(now, members, cut), Vec::new()),
            CausalEndpoint::Pccast(e) => e.on_view_install(now, view_id, members, cut),
        }
    }

    /// Multicasts `payload`; the self-delivery is immediate.
    pub fn multicast(&mut self, now: SimTime, payload: P) -> (Delivery<P>, Vec<Out<P>>) {
        match self {
            CausalEndpoint::Cbcast(e) => e.multicast(now, payload),
            CausalEndpoint::Pccast(e) => e.multicast(now, payload),
        }
    }

    /// Handles an incoming wire message.
    pub fn on_wire(&mut self, now: SimTime, wire: Wire<P>) -> (Vec<Delivery<P>>, Vec<Out<P>>) {
        match self {
            CausalEndpoint::Cbcast(e) => e.on_wire(now, wire),
            CausalEndpoint::Pccast(e) => e.on_wire(now, wire),
        }
    }

    /// Periodic protocol maintenance.
    pub fn on_tick(&mut self, now: SimTime) -> Vec<Out<P>> {
        match self {
            CausalEndpoint::Cbcast(e) => e.on_tick(now),
            CausalEndpoint::Pccast(e) => e.on_tick(now),
        }
    }
}

/// One group member's multicast endpoint, any discipline.
// Each simulated node owns exactly one of these, so the size spread
// between variants never multiplies.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Endpoint<P> {
    /// FIFO.
    Fifo(FbcastEndpoint<P>),
    /// Causal — cbcast or pccast per [`GroupConfig::discipline`].
    Causal(CausalEndpoint<P>),
    /// Sequencer total order.
    Total(AbcastEndpoint<P>),
    /// Token total order.
    TotalToken(TokenAbcastEndpoint<P>),
}

impl<P: Clone> Endpoint<P> {
    /// Creates an endpoint for member `me` of a group of `n`.
    pub fn new(d: Discipline, me: usize, n: usize, cfg: GroupConfig) -> Self {
        match d {
            Discipline::Fifo => Endpoint::Fifo(FbcastEndpoint::new(me, n, cfg)),
            Discipline::Causal => Endpoint::Causal(CausalEndpoint::new(me, n, cfg)),
            Discipline::Total { sequencer } => {
                Endpoint::Total(AbcastEndpoint::new(me, n, sequencer, cfg))
            }
            Discipline::TotalToken => Endpoint::TotalToken(TokenAbcastEndpoint::new(me, n, cfg)),
        }
    }

    /// Installs an observability probe on whichever discipline runs
    /// underneath; the probe sees the same span/wait event stream no
    /// matter which ordering guarantee is active.
    pub fn set_probe(&mut self, probe: ProbeHandle) {
        match self {
            Endpoint::Fifo(e) => e.set_probe(probe),
            Endpoint::Causal(e) => e.set_probe(probe),
            Endpoint::Total(e) => e.set_probe(probe),
            Endpoint::TotalToken(e) => e.set_probe(probe),
        }
    }

    /// The discipline this endpoint implements.
    pub fn discipline(&self) -> Discipline {
        match self {
            Endpoint::Fifo(_) => Discipline::Fifo,
            Endpoint::Causal(_) => Discipline::Causal,
            Endpoint::Total(e) => Discipline::Total {
                sequencer: if e.is_sequencer() { e.me() } else { usize::MAX },
            },
            Endpoint::TotalToken(_) => Discipline::TotalToken,
        }
    }

    /// Multicasts `payload`. Deliveries returned are local deliveries that
    /// became possible immediately (for FIFO/causal that includes the
    /// self-delivery; total order may defer it).
    pub fn multicast(&mut self, now: SimTime, payload: P) -> (Vec<Delivery<P>>, Vec<Out<P>>) {
        match self {
            Endpoint::Fifo(e) => {
                let (d, o) = e.multicast(now, payload);
                (vec![d], o)
            }
            Endpoint::Causal(e) => {
                let (d, o) = e.multicast(now, payload);
                (vec![d], o)
            }
            Endpoint::Total(e) => e.multicast(now, payload),
            Endpoint::TotalToken(e) => e.submit(now, payload),
        }
    }

    /// Handles an incoming wire message.
    pub fn on_wire(&mut self, now: SimTime, wire: Wire<P>) -> (Vec<Delivery<P>>, Vec<Out<P>>) {
        match self {
            Endpoint::Fifo(e) => e.on_wire(now, wire),
            Endpoint::Causal(e) => e.on_wire(now, wire),
            Endpoint::Total(e) => e.on_wire(now, wire),
            Endpoint::TotalToken(e) => e.on_wire(now, wire),
        }
    }

    /// Periodic protocol maintenance. The token discipline also passes
    /// the token along the ring here (hold-for-one-tick policy).
    pub fn on_tick(&mut self, now: SimTime) -> Vec<Out<P>> {
        match self {
            Endpoint::Fifo(e) => e.on_tick(now),
            Endpoint::Causal(e) => e.on_tick(now),
            Endpoint::Total(e) => e.on_tick(now),
            Endpoint::TotalToken(e) => {
                let mut out = e.on_tick(now);
                if let Some(pass) = e.pass_token() {
                    out.push(pass);
                }
                out
            }
        }
    }

    /// Delivery/ordering statistics (the app-facing layer).
    pub fn stats(&self) -> &EndpointStats {
        match self {
            Endpoint::Fifo(e) => e.stats(),
            Endpoint::Causal(e) => e.stats(),
            Endpoint::Total(e) => e.stats(),
            Endpoint::TotalToken(e) => e.stats(),
        }
    }

    /// Transport-layer statistics, where distinct from [`Self::stats`]
    /// (the sequencer design separates causal dissemination from order
    /// release).
    pub fn transport_stats(&self) -> &EndpointStats {
        match self {
            Endpoint::Total(e) => e.causal_stats(),
            other => other.stats(),
        }
    }

    /// The causal layer's delivered vector clock, where one exists.
    pub fn clock(&self) -> Option<&clocks::vector::VectorClock> {
        match self {
            Endpoint::Causal(e) => Some(e.clock()),
            _ => None,
        }
    }

    /// The causal layer's stable frontier, where one exists.
    pub fn stable_frontier(&self) -> Option<clocks::vector::VectorClock> {
        match self {
            Endpoint::Causal(e) => Some(e.stable_frontier()),
            _ => None,
        }
    }

    /// Telemetry hook: forwards to the discipline-specific gauge emitter.
    /// Metric names are prefixed per discipline (`cbcast.*`, `fbcast.*`,
    /// `abcast.*`, `token.*`) so a mixed-discipline run keeps them apart.
    pub fn sample(&self, emit: &mut dyn FnMut(&str, f64)) {
        match self {
            Endpoint::Fifo(e) => e.sample(emit),
            Endpoint::Causal(e) => e.sample(emit),
            Endpoint::Total(e) => e.sample(emit),
            Endpoint::TotalToken(e) => e.sample(emit),
        }
    }

    /// Contributes this endpoint's live blocking edges to a wait-graph
    /// snapshot (read-only; see [`crate::waitgraph`]). `now` stands in
    /// for waits whose start time is not recorded (a token pass not yet
    /// resent); all other edges carry their own arrival times.
    pub fn wait_edges(&self, now: SimTime, out: &mut Vec<crate::waitgraph::WaitEdge>) {
        match self {
            Endpoint::Fifo(e) => e.wait_edges(out),
            Endpoint::Causal(e) => e.wait_edges(out),
            Endpoint::Total(e) => e.wait_edges(out),
            Endpoint::TotalToken(e) => e.wait_edges(now, out),
        }
    }

    /// Messages currently buffered for retransmission (unstable).
    pub fn buffered_len(&self) -> usize {
        match self {
            Endpoint::Fifo(e) => e.buffered_len(),
            Endpoint::Causal(e) => e.buffered_len(),
            Endpoint::Total(e) => e.causal_stats().buffered_now as usize,
            Endpoint::TotalToken(e) => e.stats().buffered_now as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(Discipline::Fifo.name(), "fifo");
        assert_eq!(Discipline::Causal.name(), "causal");
        assert_eq!(Discipline::Total { sequencer: 0 }.name(), "total-seq");
        assert_eq!(Discipline::TotalToken.name(), "total-token");
    }

    #[test]
    fn construction_matches_discipline() {
        let cfg = GroupConfig::default();
        for d in [
            Discipline::Fifo,
            Discipline::Causal,
            Discipline::Total { sequencer: 0 },
            Discipline::TotalToken,
        ] {
            let ep: Endpoint<u32> = Endpoint::new(d, 1, 3, cfg.clone());
            match (d, &ep) {
                (Discipline::Fifo, Endpoint::Fifo(_)) => {}
                (Discipline::Causal, Endpoint::Causal(_)) => {}
                (Discipline::Total { .. }, Endpoint::Total(_)) => {}
                (Discipline::TotalToken, Endpoint::TotalToken(_)) => {}
                _ => panic!("mismatched endpoint"),
            }
        }
    }

    #[test]
    fn fifo_and_causal_self_deliver_immediately() {
        let cfg = GroupConfig::default();
        let now = SimTime::ZERO;
        for d in [Discipline::Fifo, Discipline::Causal] {
            let mut ep: Endpoint<u32> = Endpoint::new(d, 0, 3, cfg.clone());
            let (dels, _) = ep.multicast(now, 7);
            assert_eq!(dels.len(), 1, "{:?}", d);
            assert_eq!(ep.stats().sent, 1);
        }
    }

    #[test]
    fn total_non_sequencer_defers_self_delivery() {
        let mut ep: Endpoint<u32> = Endpoint::new(
            Discipline::Total { sequencer: 0 },
            1,
            3,
            GroupConfig::default(),
        );
        let (dels, _) = ep.multicast(SimTime::ZERO, 7);
        assert!(dels.is_empty());
    }

    #[test]
    fn sample_emits_discipline_prefixed_gauges() {
        let cfg = GroupConfig::default();
        for (d, prefix) in [
            (Discipline::Fifo, "fbcast."),
            (Discipline::Causal, "cbcast."),
            (Discipline::Total { sequencer: 0 }, "cbcast."),
            (Discipline::TotalToken, "token."),
        ] {
            let ep: Endpoint<u32> = Endpoint::new(d, 1, 3, cfg.clone());
            let mut names = Vec::new();
            ep.sample(&mut |name, value| {
                assert!(value.is_finite());
                names.push(name.to_string());
            });
            assert!(
                names.iter().any(|n| n.starts_with(prefix)),
                "{:?} emitted {:?}",
                d,
                names
            );
        }
        // The sequencer design samples both layers.
        let ep: Endpoint<u32> = Endpoint::new(Discipline::Total { sequencer: 0 }, 1, 3, cfg);
        let mut names = Vec::new();
        ep.sample(&mut |name, _| names.push(name.to_string()));
        assert!(names.iter().any(|n| n == "abcast.unreleased"));
    }

    #[test]
    fn token_holder_passes_on_tick() {
        let mut ep: Endpoint<u32> =
            Endpoint::new(Discipline::TotalToken, 0, 2, GroupConfig::default());
        let out = ep.on_tick(SimTime::ZERO);
        assert!(out.iter().any(|(_, w)| matches!(w, Wire::Token { .. })));
    }
}
