//! Online wait-graph analytics: live stall detection over every blocking
//! structure in the stack.
//!
//! The paper's §3–§5 critique is that CATOCS hides *why* delivery stalls:
//! a message can sit in a holdback queue (cbcast), behind a per-link
//! reorder cursor (pccast), behind an order watermark (abcast), behind a
//! token rotation, or behind a flush/install barrier (virtual synchrony)
//! — and the application sees only silence. This module turns those
//! hidden waits into one typed graph and analyses it *while the run is in
//! progress*, on the telemetry sampling cadence:
//!
//! - **Nodes** are messages, processes, per-link positions and protocol
//!   phases ([`WaitNode`]).
//! - **Edges** point from the blocked thing to what it is blocked on,
//!   stamped with the virtual time the wait began ([`WaitEdge`]).
//! - **Analysis** ([`analyze`]) runs an iterative Tarjan SCC pass, finds
//!   the *terminal* components of the condensation (cycles, or wedge
//!   heads nothing is unblocking), and ranks them by severity:
//!
//!   ```text
//!   severity = worst wait age (µs)
//!            × (1 + blocked descendants)
//!            × distinct processes involved
//!            × persistence (consecutive snapshots seen)
//!   ```
//!
//!   Each ranked stall carries a representative path — the oldest chain
//!   of waits leading into the component, plus the cycle itself — so a
//!   post-mortem can print *who* is wedged on *what* and for how long.
//!
//! Everything here is pure and deterministic: same edges in, same ranking
//! out, byte-identical across reruns. Collection (`wait_edges` on the
//! endpoints, [`crate::vsync`] for the membership layer) is `&self` and
//! work-counter-neutral, so snapshotting cannot perturb a run's digest.

use crate::group::MsgId;
use simnet::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// A stall is only *persistent* — and only counted by the gated
/// `stall.count` metric — once its component has survived this many
/// consecutive snapshots. At the default 50 ms sampling cadence that is
/// 150 ms: far longer than any healthy holdback, order-release or flush
/// round-trip, far shorter than a wedged flush.
pub const PERSIST_SNAPSHOTS: u32 = 3;

/// Protocol phases that can block progress. A waitgraph-local tag (not
/// [`simnet::obs::PhaseKind`]) because graph nodes need total order for
/// deterministic analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PhaseTag {
    /// A view-change flush in progress (delivery blackout until install).
    Flush,
    /// The total-order token making its way around the ring.
    TokenRotation,
    /// The abcast sequencer's order assignment / watermark.
    OrderAssign,
}

impl PhaseTag {
    /// Short name for rendering.
    pub fn name(self) -> &'static str {
        match self {
            PhaseTag::Flush => "flush",
            PhaseTag::TokenRotation => "token",
            PhaseTag::OrderAssign => "order",
        }
    }
}

/// One vertex of the wait graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum WaitNode {
    /// A message (delivered nowhere it is needed, or not yet arrived).
    Msg(MsgId),
    /// A process as a whole (frozen, or sitting on an unacked token).
    Proc(usize),
    /// A position on a pccast link `from -> to` that has not arrived —
    /// the copy's identity is unknown until it does (constant metadata!),
    /// so the wait can only name the slot. Resolved to [`WaitNode::Msg`]
    /// when the sender's link log is reachable (see
    /// [`crate::vsync`]'s collector).
    LinkSlot {
        /// The waiting receiver.
        to: usize,
        /// The link's sender.
        from: usize,
        /// The per-link sequence position waited for.
        seq: u64,
    },
    /// A protocol phase anchored at a process (`flush@P2` is the flush
    /// coordinated by P2).
    Phase {
        /// Which phase.
        kind: PhaseTag,
        /// The process the phase is anchored at (coordinator, sequencer,
        /// token holder).
        at: usize,
    },
}

impl fmt::Display for WaitNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitNode::Msg(id) => write!(f, "m{}.{}", id.sender, id.seq),
            WaitNode::Proc(p) => write!(f, "P{p}"),
            WaitNode::LinkSlot { to, from, seq } => {
                write!(f, "link p{from}->p{to} pos {seq}")
            }
            WaitNode::Phase { kind, at } => write!(f, "{}@P{at}", kind.name()),
        }
    }
}

/// One "blocked on" edge, observed at a single process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitEdge {
    /// The blocked thing.
    pub from: WaitNode,
    /// What it is blocked on.
    pub to: WaitNode,
    /// The process at which this wait was observed.
    pub who: usize,
    /// Virtual time the wait began (edge age = now − since).
    pub since: SimTime,
    /// Why, in one static phrase (specifics live in the nodes).
    pub reason: &'static str,
}

/// One step of a representative stall path: a node, the reason for the
/// edge it takes to the next step (empty on the last step), and that
/// edge's wait age.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathStep {
    /// The node at this step.
    pub node: WaitNode,
    /// Reason on the edge to the next step ("" on the final node).
    pub reason: &'static str,
    /// Age of that edge at snapshot time (zero on the final node).
    pub age: SimDuration,
}

/// A ranked stall: a terminal component of the wait graph's condensation
/// — either a genuine cycle (deadlock) or a wedge head that nothing is
/// unblocking — plus everything stuck behind it.
#[derive(Clone, Debug)]
pub struct RankedStall {
    /// The component's nodes, sorted (the stall's identity).
    pub nodes: Vec<WaitNode>,
    /// Whether the component is a real cycle (≥ 2 nodes, or a self-loop).
    pub is_cycle: bool,
    /// Oldest wait age on any edge into or inside the component.
    pub worst_age: SimDuration,
    /// Nodes transitively blocked behind the component (excluded from it).
    pub blocked_descendants: usize,
    /// Distinct process indices involved (component + everything behind).
    pub procs_involved: usize,
    /// Consecutive snapshots this component has been observed.
    pub persistence: u32,
    /// The ranking key (see the module docs for the formula).
    pub severity: u128,
    /// Oldest chain of waits into the component, then the cycle itself.
    pub path: Vec<PathStep>,
}

impl RankedStall {
    /// Whether this stall has survived long enough to count as
    /// persistent (the gated invariant).
    pub fn is_persistent(&self) -> bool {
        self.persistence >= PERSIST_SNAPSHOTS
    }

    /// One-line summary: severity, shape, ages, involvement.
    pub fn summary(&self) -> String {
        let shape = if self.is_cycle { "cycle" } else { "wedge" };
        format!(
            "{shape} [{}] age {} ms, {} blocked behind, {} procs, seen {}x",
            self.nodes
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            self.worst_age.as_millis(),
            self.blocked_descendants,
            self.procs_involved,
            self.persistence,
        )
    }

    /// Multi-line rendering of the representative path:
    /// `m4.34 ──(frozen by flush)──> P0 ──(awaiting install)──> flush@P2`.
    pub fn render_path(&self) -> String {
        let mut s = String::new();
        for (i, step) in self.path.iter().enumerate() {
            if i > 0 {
                s.push_str(" -> ");
            }
            s.push_str(&step.node.to_string());
            if !step.reason.is_empty() {
                s.push_str(&format!(
                    " --({}, {} ms)--",
                    step.reason,
                    step.age.as_millis()
                ));
            }
        }
        s
    }
}

/// One full analysis pass over a snapshot's edges.
#[derive(Clone, Debug, Default)]
pub struct StallSnapshot {
    /// Ranked stalls, most severe first.
    pub stalls: Vec<RankedStall>,
    /// Oldest wait age across *all* edges (not just stall components).
    pub max_age: SimDuration,
    /// Size of the largest genuine cycle (0 when none).
    pub worst_scc_size: usize,
}

impl StallSnapshot {
    /// Stalls that have persisted across [`PERSIST_SNAPSHOTS`] snapshots.
    pub fn persistent(&self) -> impl Iterator<Item = &RankedStall> {
        self.stalls.iter().filter(|s| s.is_persistent())
    }

    /// Persistent genuine cycles — the invariant clean runs must keep at
    /// zero once their quiescent tail is reached.
    pub fn persistent_cycles(&self) -> usize {
        self.persistent().filter(|s| s.is_cycle).count()
    }
}

/// Persistence tracking across consecutive snapshots, keyed by the stall
/// component's sorted node set. A component seen at snapshot *k* but not
/// at *k+1* is forgotten; reappearing restarts the count — "persistent"
/// means continuously wedged, not intermittently unlucky.
#[derive(Clone, Debug, Default)]
pub struct StallTracker {
    seen: BTreeMap<Vec<WaitNode>, u32>,
}

impl StallTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one snapshot's component signatures in, returning each
    /// signature's consecutive-snapshot count.
    fn observe(&mut self, sigs: &[Vec<WaitNode>]) -> Vec<u32> {
        let mut next = BTreeMap::new();
        let mut counts = Vec::with_capacity(sigs.len());
        for sig in sigs {
            let c = self.seen.get(sig).copied().unwrap_or(0) + 1;
            next.insert(sig.clone(), c);
            counts.push(c);
        }
        self.seen = next;
        counts
    }
}

/// Iterative Tarjan SCC. Returns each node's component id; components are
/// numbered in reverse topological order (a component's successors always
/// have *smaller* ids).
fn tarjan_scc(n: usize, adj: &[Vec<usize>]) -> (Vec<usize>, usize) {
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNSET; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut n_comps = 0usize;
    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        frames.push((start, 0));
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(*ci) {
                *ci += 1;
                if index[w] == UNSET {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp[w] = n_comps;
                        if w == v {
                            break;
                        }
                    }
                    n_comps += 1;
                }
            }
        }
    }
    (comp, n_comps)
}

/// Analyses one snapshot of wait edges: SCCs, terminal stall components,
/// severity ranking and representative paths. `tracker` carries the
/// persistence counts between consecutive snapshots.
pub fn analyze(edges: &[WaitEdge], now: SimTime, tracker: &mut StallTracker) -> StallSnapshot {
    if edges.is_empty() {
        tracker.observe(&[]);
        return StallSnapshot::default();
    }

    // Intern nodes; BTreeMap gives a deterministic numbering.
    let mut ids: BTreeMap<WaitNode, usize> = BTreeMap::new();
    for e in edges {
        let n = ids.len();
        ids.entry(e.from).or_insert(n);
        let n = ids.len();
        ids.entry(e.to).or_insert(n);
    }
    let n = ids.len();
    let mut nodes = vec![edges[0].from; n];
    for (node, &i) in &ids {
        nodes[i] = *node;
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut radj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (pred, edge idx)
    let mut self_loop = vec![false; n];
    for (ei, e) in edges.iter().enumerate() {
        let (a, b) = (ids[&e.from], ids[&e.to]);
        if a == b {
            self_loop[a] = true;
        }
        adj[a].push(b);
        radj[b].push((a, ei));
    }

    let (comp, n_comps) = tarjan_scc(n, &adj);
    let mut comp_size = vec![0usize; n_comps];
    for v in 0..n {
        comp_size[comp[v]] += 1;
    }
    // Terminal components: no edge leaves them.
    let mut terminal = vec![true; n_comps];
    for v in 0..n {
        for &w in &adj[v] {
            if comp[v] != comp[w] {
                terminal[comp[v]] = false;
            }
        }
    }

    let max_age = edges
        .iter()
        .map(|e| now.saturating_since(e.since))
        .max()
        .unwrap_or(SimDuration::ZERO);
    let worst_scc_size = (0..n_comps)
        .map(|c| {
            let cyclic = comp_size[c] > 1 || (0..n).any(|v| comp[v] == c && self_loop[v]);
            if cyclic {
                comp_size[c]
            } else {
                0
            }
        })
        .max()
        .unwrap_or(0);

    // Candidate stalls: terminal components something is blocked behind.
    let mut candidates: Vec<(usize, Vec<WaitNode>)> = Vec::new();
    for (c, &is_terminal) in terminal.iter().enumerate() {
        if !is_terminal {
            continue;
        }
        let members: Vec<usize> = (0..n).filter(|&v| comp[v] == c).collect();
        let has_in = members
            .iter()
            .any(|&v| radj[v].iter().any(|&(p, _)| comp[p] != c))
            || members.len() > 1
            || members.iter().any(|&v| self_loop[v]);
        if !has_in {
            continue;
        }
        let mut sig: Vec<WaitNode> = members.iter().map(|&v| nodes[v]).collect();
        sig.sort();
        candidates.push((c, sig));
    }
    candidates.sort_by(|a, b| a.1.cmp(&b.1));
    let sigs: Vec<Vec<WaitNode>> = candidates.iter().map(|(_, s)| s.clone()).collect();
    let persistence = tracker.observe(&sigs);

    let mut stalls = Vec::with_capacity(candidates.len());
    for ((c, sig), persist) in candidates.into_iter().zip(persistence) {
        let members: Vec<usize> = (0..n).filter(|&v| comp[v] == c).collect();
        let is_cycle = members.len() > 1 || members.iter().any(|&v| self_loop[v]);

        // Reverse reachability from the component = everything blocked
        // behind it.
        let mut reach = vec![false; n];
        let mut work: Vec<usize> = members.clone();
        for &m in &members {
            reach[m] = true;
        }
        while let Some(v) = work.pop() {
            for &(p, _) in &radj[v] {
                if !reach[p] {
                    reach[p] = true;
                    work.push(p);
                }
            }
        }
        let blocked_descendants = (0..n).filter(|&v| reach[v] && comp[v] != c).count();
        let mut procs: Vec<usize> = (0..n)
            .filter(|&v| reach[v])
            .flat_map(|v| match nodes[v] {
                WaitNode::Msg(id) => vec![id.sender],
                WaitNode::Proc(p) => vec![p],
                WaitNode::LinkSlot { to, from, .. } => vec![to, from],
                WaitNode::Phase { at, .. } => vec![at],
            })
            .collect();
        procs.sort_unstable();
        procs.dedup();
        let procs_involved = procs.len();

        // Worst age on any edge into or inside the component.
        let worst_age = edges
            .iter()
            .filter(|e| comp[ids[&e.to]] == c)
            .map(|e| now.saturating_since(e.since))
            .max()
            .unwrap_or(SimDuration::ZERO);

        let severity = (worst_age.as_micros() as u128)
            .saturating_mul(1 + blocked_descendants as u128)
            .saturating_mul(procs_involved.max(1) as u128)
            .saturating_mul(persist as u128);

        let path = representative_path(&members, c, &comp, &nodes, &ids, &radj, &adj, edges, now);

        stalls.push(RankedStall {
            nodes: sig,
            is_cycle,
            worst_age,
            blocked_descendants,
            procs_involved,
            persistence: persist,
            severity,
            path,
        });
    }

    // Most severe first; the sorted node set breaks ties deterministically.
    stalls.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.nodes.cmp(&b.nodes)));

    StallSnapshot {
        stalls,
        max_age,
        worst_scc_size,
    }
}

/// The oldest chain of waits leading into component `c`, then the cycle
/// itself (when there is one): at each backward step pick the incoming
/// edge with the greatest age, stopping at a node with no external
/// predecessors or one already on the path.
#[allow(clippy::too_many_arguments)]
fn representative_path(
    members: &[usize],
    c: usize,
    comp: &[usize],
    nodes: &[WaitNode],
    ids: &BTreeMap<WaitNode, usize>,
    radj: &[Vec<(usize, usize)>],
    adj: &[Vec<usize>],
    edges: &[WaitEdge],
    now: SimTime,
) -> Vec<PathStep> {
    // Entry: the component node with the oldest incoming external edge
    // (or, failing that, the smallest member — a pure cycle).
    let oldest_in = |v: usize| -> Option<(usize, usize)> {
        // (edge idx, pred) of the oldest external in-edge of v.
        radj[v]
            .iter()
            .filter(|&&(p, _)| comp[p] != c)
            .max_by_key(|&&(p, ei)| (now.saturating_since(edges[ei].since), std::cmp::Reverse(p)))
            .map(|&(p, ei)| (ei, p))
    };
    let entry = members
        .iter()
        .copied()
        .max_by_key(|&v| {
            oldest_in(v)
                .map(|(ei, _)| now.saturating_since(edges[ei].since))
                .unwrap_or(SimDuration::ZERO)
        })
        .unwrap_or(members[0]);

    // Walk backwards from the entry along the oldest external in-edges.
    let mut chain: Vec<(usize, usize)> = Vec::new(); // (node, edge to successor)
    let mut seen = vec![false; nodes.len()];
    seen[entry] = true;
    let mut cur = entry;
    while let Some((ei, p)) = oldest_in(cur) {
        if seen[p] {
            break;
        }
        seen[p] = true;
        chain.push((p, ei));
        cur = p;
    }
    chain.reverse();

    let mut path: Vec<PathStep> = chain
        .into_iter()
        .map(|(v, ei)| PathStep {
            node: nodes[v],
            reason: edges[ei].reason,
            age: now.saturating_since(edges[ei].since),
        })
        .collect();

    // Then the component itself: from the entry, follow in-component
    // edges until a repeat (covers both single wedge heads and cycles).
    let mut cur = entry;
    let mut in_comp_seen = vec![false; nodes.len()];
    loop {
        if in_comp_seen[cur] {
            break;
        }
        in_comp_seen[cur] = true;
        let next = adj[cur].iter().copied().find(|&w| comp[w] == c);
        match next {
            Some(w) => {
                // The concrete edge cur -> w, for its reason and age.
                let ei = edges
                    .iter()
                    .position(|e| ids[&e.from] == cur && ids[&e.to] == w)
                    .expect("adjacency implies an edge");
                path.push(PathStep {
                    node: nodes[cur],
                    reason: edges[ei].reason,
                    age: now.saturating_since(edges[ei].since),
                });
                if in_comp_seen[w] {
                    // Close the cycle visually by naming the repeat.
                    path.push(PathStep {
                        node: nodes[w],
                        reason: "",
                        age: SimDuration::ZERO,
                    });
                    break;
                }
                cur = w;
            }
            None => {
                path.push(PathStep {
                    node: nodes[cur],
                    reason: "",
                    age: SimDuration::ZERO,
                });
                break;
            }
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn msg(sender: usize, seq: u64) -> WaitNode {
        WaitNode::Msg(MsgId { sender, seq })
    }

    fn edge(from: WaitNode, to: WaitNode, since_ms: u64, reason: &'static str) -> WaitEdge {
        WaitEdge {
            from,
            to,
            who: 0,
            since: t(since_ms),
            reason,
        }
    }

    #[test]
    fn empty_graph_has_no_stalls() {
        let mut tr = StallTracker::new();
        let s = analyze(&[], t(100), &mut tr);
        assert!(s.stalls.is_empty());
        assert_eq!(s.worst_scc_size, 0);
        assert_eq!(s.max_age, SimDuration::ZERO);
    }

    #[test]
    fn chain_yields_single_wedge_head() {
        // m0.1 -> m1.1 -> m2.1: the terminal wedge head is m2.1.
        let edges = vec![
            edge(msg(0, 1), msg(1, 1), 10, "needs predecessor"),
            edge(msg(1, 1), msg(2, 1), 5, "needs predecessor"),
        ];
        let mut tr = StallTracker::new();
        let s = analyze(&edges, t(100), &mut tr);
        assert_eq!(s.stalls.len(), 1);
        let st = &s.stalls[0];
        assert!(!st.is_cycle);
        assert_eq!(st.nodes, vec![msg(2, 1)]);
        assert_eq!(st.blocked_descendants, 2);
        assert_eq!(st.worst_age, SimDuration::from_millis(95));
        assert_eq!(s.worst_scc_size, 0);
        // Path walks the whole chain into the head.
        let names: Vec<String> = st.path.iter().map(|p| p.node.to_string()).collect();
        assert_eq!(names, vec!["m0.1", "m1.1", "m2.1"]);
    }

    #[test]
    fn cycle_is_detected_and_ranked_above_wedge() {
        let flush = WaitNode::Phase {
            kind: PhaseTag::Flush,
            at: 2,
        };
        let edges = vec![
            // A 2-cycle: P0 waits on the flush, the flush waits on P0's ack.
            edge(WaitNode::Proc(0), flush, 10, "awaiting install"),
            edge(flush, WaitNode::Proc(0), 10, "missing FlushOk"),
            // Messages wedged behind it.
            edge(msg(4, 34), WaitNode::Proc(0), 20, "frozen by flush"),
            // An unrelated small wedge.
            edge(msg(3, 1), msg(3, 0), 90, "needs predecessor"),
        ];
        let mut tr = StallTracker::new();
        let s = analyze(&edges, t(100), &mut tr);
        assert_eq!(s.worst_scc_size, 2);
        assert_eq!(s.stalls.len(), 2);
        let top = &s.stalls[0];
        assert!(top.is_cycle);
        assert_eq!(top.nodes, vec![WaitNode::Proc(0), flush]);
        assert_eq!(top.blocked_descendants, 1);
        // The path names the coordinator's flush phase.
        assert!(
            top.render_path().contains("flush@P2"),
            "{}",
            top.render_path()
        );
        assert!(
            top.render_path().starts_with("m4.34"),
            "{}",
            top.render_path()
        );
    }

    #[test]
    fn self_loop_counts_as_cycle() {
        let edges = vec![edge(
            WaitNode::Proc(1),
            WaitNode::Proc(1),
            0,
            "waits on itself",
        )];
        let mut tr = StallTracker::new();
        let s = analyze(&edges, t(50), &mut tr);
        assert_eq!(s.stalls.len(), 1);
        assert!(s.stalls[0].is_cycle);
        assert_eq!(s.worst_scc_size, 1);
    }

    #[test]
    fn persistence_counts_consecutive_snapshots_only() {
        let edges = vec![edge(msg(0, 2), msg(0, 1), 0, "needs predecessor")];
        let mut tr = StallTracker::new();
        let s1 = analyze(&edges, t(50), &mut tr);
        assert_eq!(s1.stalls[0].persistence, 1);
        assert!(!s1.stalls[0].is_persistent());
        let s2 = analyze(&edges, t(100), &mut tr);
        assert_eq!(s2.stalls[0].persistence, 2);
        let s3 = analyze(&edges, t(150), &mut tr);
        assert_eq!(s3.stalls[0].persistence, 3);
        assert!(s3.stalls[0].is_persistent());
        // The component vanishes for one snapshot: the count resets.
        let s4 = analyze(&[], t(200), &mut tr);
        assert!(s4.stalls.is_empty());
        let s5 = analyze(&edges, t(250), &mut tr);
        assert_eq!(s5.stalls[0].persistence, 1);
    }

    #[test]
    fn severity_scales_with_blocked_descendants() {
        // Same head age, one head with two ancestors vs one with none... a
        // lone head with no in-edges is not even a candidate, so compare
        // one-ancestor vs three-ancestor wedges.
        let head_a = msg(9, 1);
        let head_b = msg(9, 2);
        let edges = vec![
            edge(msg(0, 1), head_a, 0, "w"),
            edge(msg(1, 1), head_b, 0, "w"),
            edge(msg(2, 1), head_b, 0, "w"),
            edge(msg(3, 1), head_b, 0, "w"),
        ];
        let mut tr = StallTracker::new();
        let s = analyze(&edges, t(100), &mut tr);
        assert_eq!(s.stalls.len(), 2);
        assert_eq!(s.stalls[0].nodes, vec![head_b]);
        assert!(s.stalls[0].severity > s.stalls[1].severity);
    }

    #[test]
    fn analysis_is_deterministic() {
        let flush = WaitNode::Phase {
            kind: PhaseTag::Flush,
            at: 0,
        };
        let edges = vec![
            edge(WaitNode::Proc(3), flush, 7, "awaiting install"),
            edge(flush, WaitNode::Proc(3), 9, "missing FlushOk"),
            edge(msg(1, 5), WaitNode::Proc(3), 11, "frozen by flush"),
            edge(msg(2, 2), msg(1, 5), 13, "needs predecessor"),
        ];
        let run = || {
            let mut tr = StallTracker::new();
            let s = analyze(&edges, t(500), &mut tr);
            s.stalls
                .iter()
                .map(|st| (st.summary(), st.render_path(), st.severity))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
