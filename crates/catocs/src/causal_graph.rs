//! The "active causal graph" of the paper's §5, measured live.
//!
//! > "The causal order of messages in a system can be represented as a
//! > directed acyclic graph with nodes as messages and an arc between two
//! > nodes represents messages that are potentially causally related. The
//! > active causal graph is the subgraph that results from deleting nodes
//! > corresponding to 'stable' messages and their incidental arcs."
//!
//! Experiment T5 feeds this structure from a live cbcast run: every send
//! adds a node plus arcs from the sender's current causal frontier (the
//! latest message from each member visible in the new message's
//! timestamp); stability advances prune nodes. The paper predicts the
//! node count grows ~linearly in N (for fixed per-process rate and a
//! diameter growing with N) and the arc count quadratically.

use crate::group::MsgId;
use clocks::vector::VectorClock;
use std::collections::{BTreeMap, BTreeSet};

/// A live model of the active causal graph for one group.
#[derive(Debug, Default)]
pub struct CausalGraph {
    /// Unstable messages currently in the graph, with their direct
    /// predecessor arcs.
    nodes: BTreeMap<MsgId, BTreeSet<MsgId>>,
    /// Cumulative counters.
    total_nodes_added: u64,
    total_arcs_added: u64,
    /// High-water marks.
    peak_nodes: usize,
    peak_arcs: usize,
    /// Current arc count (sum of predecessor sets).
    current_arcs: usize,
}

impl CausalGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a multicast: message `id` stamped with `vt` from a group
    /// of `n`. Arcs are drawn from the latest message of every member
    /// visible in the timestamp — the direct potential-causality
    /// predecessors.
    pub fn on_send(&mut self, id: MsgId, vt: &VectorClock, n: usize) {
        let mut preds = BTreeSet::new();
        for k in 0..n {
            let seq = if k == id.sender {
                id.seq.saturating_sub(1)
            } else {
                vt.get(k)
            };
            if seq > 0 {
                preds.insert(MsgId { sender: k, seq });
            }
        }
        self.total_nodes_added += 1;
        self.total_arcs_added += preds.len() as u64;
        self.current_arcs += preds.len();
        self.nodes.insert(id, preds);
        self.peak_nodes = self.peak_nodes.max(self.nodes.len());
        self.peak_arcs = self.peak_arcs.max(self.current_arcs);
    }

    /// Prunes every message at or below the stability `frontier`
    /// (component `s` = highest stable seq from sender `s`).
    pub fn prune_stable(&mut self, frontier: &VectorClock) {
        let removed: Vec<MsgId> = self
            .nodes
            .keys()
            .filter(|id| id.seq <= frontier.get(id.sender))
            .copied()
            .collect();
        for id in removed {
            if let Some(preds) = self.nodes.remove(&id) {
                self.current_arcs -= preds.len();
            }
        }
    }

    /// Current (unstable) node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current arc count.
    pub fn arc_count(&self) -> usize {
        self.current_arcs
    }

    /// Peak node count over the run.
    pub fn peak_nodes(&self) -> usize {
        self.peak_nodes
    }

    /// Peak arc count over the run.
    pub fn peak_arcs(&self) -> usize {
        self.peak_arcs
    }

    /// Total nodes ever added.
    pub fn total_nodes(&self) -> u64 {
        self.total_nodes_added
    }

    /// Total arcs ever added.
    pub fn total_arcs(&self) -> u64 {
        self.total_arcs_added
    }

    /// Mean arcs per message over the run — the paper argues this is
    /// Θ(N) under all-to-all traffic.
    pub fn mean_arcs_per_node(&self) -> f64 {
        if self.total_nodes_added == 0 {
            0.0
        } else {
            self.total_arcs_added as f64 / self.total_nodes_added as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(sender: usize, seq: u64) -> MsgId {
        MsgId { sender, seq }
    }

    #[test]
    fn first_message_has_no_arcs() {
        let mut g = CausalGraph::new();
        let mut vt = VectorClock::new(3);
        vt.tick(0);
        g.on_send(id(0, 1), &vt, 3);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.arc_count(), 0);
    }

    #[test]
    fn arcs_from_causal_frontier() {
        let mut g = CausalGraph::new();
        // P0 sends m0.1; P1 (having delivered m0.1) sends m1.1.
        let mut vt0 = VectorClock::new(3);
        vt0.tick(0);
        g.on_send(id(0, 1), &vt0, 3);
        let mut vt1 = VectorClock::new(3);
        vt1.set(0, 1);
        vt1.tick(1);
        g.on_send(id(1, 1), &vt1, 3);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.arc_count(), 1); // m1.1 → m0.1
        assert_eq!(g.total_arcs(), 1);
    }

    #[test]
    fn multicast_after_receiving_many_adds_many_arcs() {
        // The §5 observation: "a process that multicasts a new message to
        // the group after receiving a message introduces N new arcs".
        let n = 8;
        let mut g = CausalGraph::new();
        let mut vt = VectorClock::new(n);
        for k in 0..n {
            vt.set(k, 1); // delivered one message from everyone
            g.on_send(id(k, 1), &VectorClock::new(n), n);
        }
        vt.tick(0); // but P0 already has seq 1... use a fresh sender slot
        let mut sender_vt = vt.clone();
        sender_vt.set(0, 2);
        g.on_send(id(0, 2), &sender_vt, n);
        // Arcs to the latest message from all 8 members (own previous
        // included).
        assert_eq!(g.arc_count(), 8);
    }

    #[test]
    fn prune_stable_removes_nodes_and_arcs() {
        let mut g = CausalGraph::new();
        let mut vt0 = VectorClock::new(2);
        vt0.tick(0);
        g.on_send(id(0, 1), &vt0, 2);
        let mut vt1 = VectorClock::new(2);
        vt1.set(0, 1);
        vt1.tick(1);
        g.on_send(id(1, 1), &vt1, 2);
        assert_eq!(g.node_count(), 2);
        // m0.1 becomes stable.
        let frontier = VectorClock::from_entries(vec![1, 0]);
        g.prune_stable(&frontier);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.arc_count(), 1, "arc from the surviving node remains");
        assert_eq!(g.peak_nodes(), 2);
    }

    #[test]
    fn mean_arcs_tracks_totals() {
        let mut g = CausalGraph::new();
        assert_eq!(g.mean_arcs_per_node(), 0.0);
        let mut vt = VectorClock::new(2);
        vt.tick(0);
        g.on_send(id(0, 1), &vt, 2);
        let mut vt2 = vt.clone();
        vt2.set(0, 2);
        g.on_send(id(0, 2), &vt2, 2);
        // Second message has one arc (to m0.1).
        assert_eq!(g.total_nodes(), 2);
        assert_eq!(g.mean_arcs_per_node(), 0.5);
    }
}
