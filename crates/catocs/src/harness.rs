//! `simnet` glue: host a multicast endpoint and an application behaviour
//! inside a simulated process.
//!
//! [`GroupNode`] wires a [`Endpoint`] to the simulator: it translates the
//! endpoint's member-indexed [`Dest`]s into process sends, pumps the
//! protocol tick, and forwards deliveries to a [`GroupApp`]. Most of the
//! pure-group experiments (T5, T6, T7, T11) run on this harness; the
//! application scenarios in the `apps` crate hand-roll their own processes
//! because they mix group traffic with out-of-band channels (the whole
//! point of the paper's hidden-channel critique).

use crate::endpoint::{Discipline, Endpoint};
use crate::group::GroupConfig;
use crate::wire::{Delivery, Dest, EndpointStats, Out, Wire};
use rand::rngs::SmallRng;
use simnet::process::{Ctx, Process, ProcessId, TimerId};
use simnet::time::{SimDuration, SimTime};

/// Timer reserved for the protocol tick.
const PROTO_TICK: TimerId = TimerId(0);
/// Timer reserved for the application tick.
const APP_TICK: TimerId = TimerId(1);

/// What a [`GroupApp`] can do when called back.
pub struct GroupCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// This member's index.
    pub me: usize,
    /// Group size.
    pub n: usize,
    /// Deterministic randomness.
    pub rng: &'a mut SmallRng,
    stop: bool,
}

impl<'a> GroupCtx<'a> {
    /// Requests simulation stop.
    pub fn stop(&mut self) {
        self.stop = true;
    }
}

/// An application behaviour running on a group endpoint.
///
/// Methods return the payloads to multicast, which keeps the trait object
/// simple and the data flow explicit.
pub trait GroupApp<P>: 'static {
    /// Called once at start; returns initial multicasts.
    fn on_activate(&mut self, ctx: &mut GroupCtx<'_>) -> Vec<P> {
        let _ = ctx;
        Vec::new()
    }

    /// Called for every delivery; returns reactive multicasts.
    fn on_deliver(&mut self, ctx: &mut GroupCtx<'_>, delivery: &Delivery<P>) -> Vec<P> {
        let _ = (ctx, delivery);
        Vec::new()
    }

    /// Called on the application tick; returns periodic multicasts.
    fn on_tick(&mut self, ctx: &mut GroupCtx<'_>) -> Vec<P> {
        let _ = ctx;
        Vec::new()
    }
}

/// A simulated process hosting one group member: endpoint + app.
pub struct GroupNode<P, A> {
    endpoint: Endpoint<P>,
    app: A,
    members: Vec<ProcessId>,
    me: usize,
    cfg: GroupConfig,
    app_tick: Option<SimDuration>,
    /// All deliveries seen, in order (experiments read this post-run).
    pub delivered_log: Vec<Delivery<P>>,
    /// Whether to retain the delivered log (off for big sweeps).
    pub keep_log: bool,
    /// Optional shared "active causal graph" instrumentation (§5): every
    /// send adds a node/arcs; member 0 prunes at the stable frontier.
    /// Shared via `Rc<RefCell<_>>` across the group's nodes — sound
    /// because the simulator is single-threaded.
    pub graph: Option<std::rc::Rc<std::cell::RefCell<crate::causal_graph::CausalGraph>>>,
}

impl<P: Clone + std::fmt::Debug + 'static, A: GroupApp<P>> GroupNode<P, A> {
    /// Creates a node for member `me` (of `members`) with the given
    /// discipline and app. `app_tick` is the period of the application
    /// tick, if any.
    pub fn new(
        discipline: Discipline,
        me: usize,
        members: Vec<ProcessId>,
        cfg: GroupConfig,
        app: A,
        app_tick: Option<SimDuration>,
    ) -> Self {
        let n = members.len();
        GroupNode {
            endpoint: Endpoint::new(discipline, me, n, cfg.clone()),
            app,
            members,
            me,
            cfg,
            app_tick,
            delivered_log: Vec::new(),
            keep_log: true,
            graph: None,
        }
    }

    /// The endpoint's delivery statistics.
    pub fn stats(&self) -> &EndpointStats {
        self.endpoint.stats()
    }

    /// The endpoint's transport statistics.
    pub fn transport_stats(&self) -> &EndpointStats {
        self.endpoint.transport_stats()
    }

    /// The endpoint itself (for discipline-specific inspection).
    pub fn endpoint(&self) -> &Endpoint<P> {
        &self.endpoint
    }

    /// The hosted application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// The hosted application (mutable).
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    fn route(&self, ctx: &mut Ctx<'_, Wire<P>>, out: Vec<Out<P>>) {
        for (dest, wire) in out {
            match dest {
                Dest::All => {
                    for (k, &pid) in self.members.iter().enumerate() {
                        if k != self.me {
                            ctx.send(pid, wire.clone());
                        }
                    }
                }
                Dest::One(k) => {
                    if let Some(&pid) = self.members.get(k) {
                        ctx.send(pid, wire.clone());
                    }
                }
            }
        }
    }

    fn submit_all(&mut self, ctx: &mut Ctx<'_, Wire<P>>, payloads: Vec<P>) {
        for p in payloads {
            let (dels, out) = self.endpoint.multicast(ctx.now(), p);
            if let (Some(graph), Some(vt)) = (&self.graph, self.endpoint.clock()) {
                // The clock right after a causal multicast IS the
                // message's timestamp.
                let id = crate::group::MsgId {
                    sender: self.me,
                    seq: vt.get(self.me),
                };
                graph.borrow_mut().on_send(id, vt, self.members.len());
            }
            self.route(ctx, out);
            self.handle_deliveries(ctx, dels);
        }
    }

    fn handle_deliveries(&mut self, ctx: &mut Ctx<'_, Wire<P>>, dels: Vec<Delivery<P>>) {
        for d in dels {
            ctx.metrics().incr("group.delivered", 1);
            if d.was_held() {
                ctx.metrics().incr("group.delivered_held", 1);
                ctx.metrics().observe("group.hold_time", d.hold_time());
            }
            let reactions = {
                let mut gctx = GroupCtx {
                    now: ctx.now(),
                    me: self.me,
                    n: self.members.len(),
                    rng: ctx.rng(),
                    stop: false,
                };
                let r = self.app.on_deliver(&mut gctx, &d);
                if gctx.stop {
                    ctx.stop();
                }
                r
            };
            if self.keep_log {
                self.delivered_log.push(d);
            }
            self.submit_all(ctx, reactions);
        }
    }
}

impl<P: Clone + std::fmt::Debug + 'static, A: GroupApp<P>> Process<Wire<P>> for GroupNode<P, A> {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Wire<P>>) {
        ctx.set_timer(PROTO_TICK, self.cfg.tick_interval);
        if let Some(t) = self.app_tick {
            ctx.set_timer(APP_TICK, t);
        }
        let initial = {
            let mut gctx = GroupCtx {
                now: ctx.now(),
                me: self.me,
                n: self.members.len(),
                rng: ctx.rng(),
                stop: false,
            };
            let r = self.app.on_activate(&mut gctx);
            if gctx.stop {
                ctx.stop();
            }
            r
        };
        self.submit_all(ctx, initial);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Wire<P>>, _from: ProcessId, msg: Wire<P>) {
        let (dels, out) = self.endpoint.on_wire(ctx.now(), msg);
        self.route(ctx, out);
        self.handle_deliveries(ctx, dels);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire<P>>, timer: TimerId) {
        match timer {
            PROTO_TICK => {
                let out = self.endpoint.on_tick(ctx.now());
                self.route(ctx, out);
                ctx.set_timer(PROTO_TICK, self.cfg.tick_interval);
                ctx.metrics()
                    .gauge_max("group.buffered_peak", self.endpoint.buffered_len() as f64);
                ctx.metrics().set_gauge(
                    "group.holdback_work",
                    self.endpoint.transport_stats().holdback_work as f64,
                );
                if self.me == 0 {
                    if let (Some(graph), Some(frontier)) =
                        (&self.graph, self.endpoint.stable_frontier())
                    {
                        graph.borrow_mut().prune_stable(&frontier);
                    }
                }
            }
            APP_TICK => {
                let payloads = {
                    let mut gctx = GroupCtx {
                        now: ctx.now(),
                        me: self.me,
                        n: self.members.len(),
                        rng: ctx.rng(),
                        stop: false,
                    };
                    let r = self.app.on_tick(&mut gctx);
                    if gctx.stop {
                        ctx.stop();
                    }
                    r
                };
                self.submit_all(ctx, payloads);
                if let Some(t) = self.app_tick {
                    ctx.set_timer(APP_TICK, t);
                }
            }
            _ => {}
        }
    }

    fn sample(&self, emit: &mut dyn FnMut(&str, f64)) {
        self.endpoint.sample(emit);
    }
}

/// Builds a full group of [`GroupNode`]s in a fresh set of processes and
/// returns their ids. All nodes share the discipline, config and an app
/// produced per member by `make_app`.
pub fn spawn_group<P, A, F>(
    sim: &mut simnet::sim::Sim<Wire<P>>,
    n: usize,
    discipline: Discipline,
    cfg: GroupConfig,
    app_tick: Option<SimDuration>,
    mut make_app: F,
) -> Vec<ProcessId>
where
    P: Clone + std::fmt::Debug + 'static,
    A: GroupApp<P>,
    F: FnMut(usize) -> A,
{
    let base = sim.n_processes();
    let members: Vec<ProcessId> = (0..n).map(|i| ProcessId(base + i)).collect();
    for me in 0..n {
        let node = GroupNode::new(
            discipline,
            me,
            members.clone(),
            cfg.clone(),
            make_app(me),
            app_tick,
        );
        sim.add_process(node);
    }
    members
}

/// [`spawn_group`], but with an observability probe cloned onto every
/// member's endpoint — the latency ledger and the flight recorder both
/// attach here.
#[allow(clippy::too_many_arguments)]
pub fn spawn_group_with_probe<P, A, F>(
    sim: &mut simnet::sim::Sim<Wire<P>>,
    n: usize,
    discipline: Discipline,
    cfg: GroupConfig,
    app_tick: Option<SimDuration>,
    probe: simnet::obs::ProbeHandle,
    mut make_app: F,
) -> Vec<ProcessId>
where
    P: Clone + std::fmt::Debug + 'static,
    A: GroupApp<P>,
    F: FnMut(usize) -> A,
{
    let base = sim.n_processes();
    let members: Vec<ProcessId> = (0..n).map(|i| ProcessId(base + i)).collect();
    for me in 0..n {
        let mut node = GroupNode::new(
            discipline,
            me,
            members.clone(),
            cfg.clone(),
            make_app(me),
            app_tick,
        );
        node.endpoint.set_probe(probe.clone());
        sim.add_process(node);
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::net::NetConfig;
    use simnet::sim::SimBuilder;

    /// Each member multicasts `count` messages on its app tick, then goes
    /// quiet. Used to smoke-test the harness end to end.
    struct Chatter {
        remaining: u32,
        seen: Vec<(usize, u64)>,
    }

    impl GroupApp<u32> for Chatter {
        fn on_tick(&mut self, ctx: &mut GroupCtx<'_>) -> Vec<u32> {
            if self.remaining > 0 {
                self.remaining -= 1;
                vec![ctx.me as u32]
            } else {
                Vec::new()
            }
        }
        fn on_deliver(&mut self, _ctx: &mut GroupCtx<'_>, d: &Delivery<u32>) -> Vec<u32> {
            self.seen.push((d.id.sender, d.id.seq));
            Vec::new()
        }
    }

    #[test]
    fn group_of_causal_nodes_delivers_everything() {
        let mut sim = SimBuilder::new(7)
            .net(NetConfig::lossy_lan(0.05))
            .build::<Wire<u32>>();
        let members = spawn_group(
            &mut sim,
            4,
            Discipline::Causal,
            GroupConfig::default(),
            Some(SimDuration::from_millis(20)),
            |_| Chatter {
                remaining: 5,
                seen: Vec::new(),
            },
        );
        sim.run_until(SimTime::from_secs(5));
        // 4 members × 5 messages; every member sees all 20.
        for &m in &members {
            let node = sim
                .process::<GroupNode<u32, Chatter>>(m)
                .expect("node present");
            assert_eq!(node.app().seen.len(), 20, "member {m} missed messages");
            assert_eq!(node.stats().delivered, 20);
        }
    }

    #[test]
    fn causal_order_holds_under_loss_and_reorder() {
        let mut sim = SimBuilder::new(3)
            .net(NetConfig::lossy_lan(0.1))
            .build::<Wire<u32>>();
        let members = spawn_group(
            &mut sim,
            3,
            Discipline::Causal,
            GroupConfig::default(),
            Some(SimDuration::from_millis(15)),
            |_| Chatter {
                remaining: 10,
                seen: Vec::new(),
            },
        );
        sim.run_until(SimTime::from_secs(5));
        // FIFO-per-sender is implied by causal: each member's view of each
        // sender must be 1,2,3...
        for &m in &members {
            let node = sim.process::<GroupNode<u32, Chatter>>(m).unwrap();
            let mut per_sender: std::collections::HashMap<usize, u64> = Default::default();
            for &(s, q) in &node.app().seen {
                let e = per_sender.entry(s).or_insert(0);
                assert_eq!(q, *e + 1, "sender {s} out of order at {m}");
                *e = q;
            }
        }
    }

    #[test]
    fn total_order_identical_across_members() {
        let mut sim = SimBuilder::new(11)
            .net(NetConfig::lossy_lan(0.05))
            .build::<Wire<u32>>();
        let members = spawn_group(
            &mut sim,
            4,
            Discipline::Total { sequencer: 0 },
            GroupConfig::default(),
            Some(SimDuration::from_millis(25)),
            |_| Chatter {
                remaining: 4,
                seen: Vec::new(),
            },
        );
        sim.run_until(SimTime::from_secs(5));
        let mut sequences = Vec::new();
        for &m in &members {
            let node = sim.process::<GroupNode<u32, Chatter>>(m).unwrap();
            sequences.push(node.app().seen.clone());
        }
        for s in &sequences[1..] {
            assert_eq!(s, &sequences[0], "total order must be identical");
        }
        assert_eq!(sequences[0].len(), 16);
    }

    #[test]
    fn fifo_group_delivers_per_sender_order() {
        let mut sim = SimBuilder::new(5)
            .net(NetConfig::lossy_lan(0.1))
            .build::<Wire<u32>>();
        let members = spawn_group(
            &mut sim,
            3,
            Discipline::Fifo,
            GroupConfig::default(),
            Some(SimDuration::from_millis(10)),
            |_| Chatter {
                remaining: 8,
                seen: Vec::new(),
            },
        );
        sim.run_until(SimTime::from_secs(5));
        for &m in &members {
            let node = sim.process::<GroupNode<u32, Chatter>>(m).unwrap();
            assert_eq!(node.app().seen.len(), 24);
        }
    }

    #[test]
    fn token_group_delivers_identically() {
        let mut sim = SimBuilder::new(13)
            .net(NetConfig::ideal(SimDuration::from_millis(1)))
            .build::<Wire<u32>>();
        let members = spawn_group(
            &mut sim,
            3,
            Discipline::TotalToken,
            GroupConfig::default(),
            Some(SimDuration::from_millis(30)),
            |_| Chatter {
                remaining: 3,
                seen: Vec::new(),
            },
        );
        sim.run_until(SimTime::from_secs(5));
        let mut sequences = Vec::new();
        for &m in &members {
            let node = sim.process::<GroupNode<u32, Chatter>>(m).unwrap();
            sequences.push(node.app().seen.clone());
        }
        for s in &sequences[1..] {
            assert_eq!(s, &sequences[0]);
        }
        assert_eq!(sequences[0].len(), 9);
    }
}
