//! View-synchronous membership with a flush protocol.
//!
//! When a member is suspected, the surviving coordinator (lowest live
//! member index) proposes a new view. Every member then *flushes*: it
//! stops sending new application messages (the paper's §4.4/§5 complaint:
//! "Membership change protocols also suppress the sending of new messages
//! during a significant portion of the protocol"), retransmits its
//! unstable messages so every survivor has them, and acknowledges with a
//! `FlushOk` carrying its delivered clock. When the coordinator has heard
//! from every proposed member it installs the view, ending the blackout.
//!
//! Experiment T11 measures the two costs the paper predicts: flush
//! message count (grows with group size and unstable-buffer depth) and
//! blackout duration.
//!
//! Member identity note: inside this engine, `View.members` carries group
//! *member indices* wrapped as `ProcessId` — the engine is transport
//! agnostic, and the harness maps indices to simulator processes.

use crate::group::View;
use crate::wire::{Dest, Out, Wire};
use clocks::vector::VectorClock;
use serde::{Deserialize, Serialize};
use simnet::process::ProcessId;
use simnet::time::{SimDuration, SimTime};
use std::collections::BTreeSet;

/// What the caller must do after handing the engine an event.
#[derive(Debug, PartialEq, Eq)]
pub enum FlushAction {
    /// Nothing further.
    None,
    /// Retransmit all unstable buffered messages to the group; the
    /// engine has already queued this member's `FlushOk`.
    RetransmitUnstable,
    /// A new view was installed (delivered as an ordered event).
    ViewInstalled(View),
}

/// Cumulative membership statistics.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MembershipStats {
    /// Views installed (beyond the initial one).
    pub view_changes: u64,
    /// Flush-protocol messages sent by this member.
    pub flush_msgs: u64,
    /// Total time spent with sending suppressed.
    pub blackout_total: SimDuration,
    /// Duration of the most recent blackout.
    pub last_blackout: SimDuration,
}

#[derive(Debug)]
enum Phase {
    Normal,
    /// Flushing toward `proposed`; coordinator tracks acks.
    Flushing {
        proposed: View,
        acks: BTreeSet<usize>,
        since: SimTime,
    },
}

/// The membership state machine for one member.
#[derive(Debug)]
pub struct MembershipEngine {
    me: usize,
    view: View,
    phase: Phase,
    stats: MembershipStats,
}

impl MembershipEngine {
    /// Creates the engine for member `me` of an initial group of `n`.
    pub fn new(me: usize, n: usize) -> Self {
        MembershipEngine {
            me,
            view: View::initial((0..n).map(ProcessId).collect()),
            phase: Phase::Normal,
            stats: MembershipStats::default(),
        }
    }

    /// The currently installed view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Whether the member may send application multicasts right now.
    pub fn can_send(&self) -> bool {
        matches!(self.phase, Phase::Normal)
    }

    /// Statistics.
    pub fn stats(&self) -> &MembershipStats {
        &self.stats
    }

    /// The coordinator of a view: its lowest member index.
    fn coordinator_of(view: &View) -> usize {
        view.members.iter().map(|p| p.0).min().unwrap_or(0)
    }

    /// Whether this member coordinates the current (or proposed) view.
    pub fn is_coordinator(&self) -> bool {
        match &self.phase {
            Phase::Normal => Self::coordinator_of(&self.view) == self.me,
            Phase::Flushing { proposed, .. } => Self::coordinator_of(proposed) == self.me,
        }
    }

    /// Reports that `dead` are suspected. If this member is the surviving
    /// coordinator, it initiates the view change; otherwise nothing
    /// happens (it waits for the coordinator's `Flush`).
    pub fn suspect<P>(&mut self, now: SimTime, dead: &[usize]) -> (FlushAction, Vec<Out<P>>) {
        if !matches!(self.phase, Phase::Normal) {
            return (FlushAction::None, Vec::new());
        }
        let dead_pids: Vec<ProcessId> = dead.iter().map(|&d| ProcessId(d)).collect();
        let proposed = self.view.without(&dead_pids);
        if proposed.members.len() == self.view.members.len() {
            return (FlushAction::None, Vec::new());
        }
        if Self::coordinator_of(&proposed) != self.me {
            return (FlushAction::None, Vec::new());
        }
        let mut acks = BTreeSet::new();
        acks.insert(self.me);
        let flush = Wire::Flush {
            proposed: proposed.clone(),
            from: self.me,
        };
        self.stats.flush_msgs += 1;
        self.phase = Phase::Flushing {
            proposed,
            acks,
            since: now,
        };
        (FlushAction::RetransmitUnstable, vec![(Dest::All, flush)])
    }

    /// Handles a membership wire message. `delivered` is this member's
    /// current delivered clock (sent in `FlushOk`).
    pub fn on_wire<P>(
        &mut self,
        now: SimTime,
        wire: &Wire<P>,
        delivered: &VectorClock,
    ) -> (FlushAction, Vec<Out<P>>) {
        match wire {
            Wire::Flush { proposed, from } => {
                if proposed.id.0 <= self.view.id.0 {
                    return (FlushAction::None, Vec::new()); // stale
                }
                if !matches!(self.phase, Phase::Flushing { .. }) {
                    self.phase = Phase::Flushing {
                        proposed: proposed.clone(),
                        acks: BTreeSet::new(),
                        since: now,
                    };
                }
                let ok = Wire::FlushOk {
                    view_id: proposed.id,
                    from: self.me,
                    delivered: delivered.clone(),
                };
                self.stats.flush_msgs += 1;
                (
                    FlushAction::RetransmitUnstable,
                    vec![(Dest::One(*from), ok)],
                )
            }
            Wire::FlushOk { view_id, from, .. } => {
                let install = match &mut self.phase {
                    Phase::Flushing { proposed, acks, .. }
                        if proposed.id == *view_id && Self::coordinator_of(proposed) == self.me =>
                    {
                        acks.insert(*from);
                        let everyone = proposed.members.iter().all(|m| acks.contains(&m.0));
                        everyone.then(|| proposed.clone())
                    }
                    _ => None,
                };
                if let Some(view) = install {
                    let msg = Wire::Install { view: view.clone() };
                    self.stats.flush_msgs += 1;
                    let action = self.install(now, view);
                    (action, vec![(Dest::All, msg)])
                } else {
                    (FlushAction::None, Vec::new())
                }
            }
            Wire::Install { view } => {
                if view.id.0 <= self.view.id.0 {
                    return (FlushAction::None, Vec::new());
                }
                let action = self.install(now, view.clone());
                (action, Vec::new())
            }
            _ => (FlushAction::None, Vec::new()),
        }
    }

    fn install(&mut self, now: SimTime, view: View) -> FlushAction {
        if let Phase::Flushing { since, .. } = self.phase {
            let blackout = now.saturating_since(since);
            self.stats.blackout_total += blackout;
            self.stats.last_blackout = blackout;
        }
        self.view = view.clone();
        self.phase = Phase::Normal;
        self.stats.view_changes += 1;
        FlushAction::ViewInstalled(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::ViewId;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn vc(n: usize) -> VectorClock {
        VectorClock::new(n)
    }

    #[test]
    fn coordinator_initiates_on_suspicion() {
        let mut m0 = MembershipEngine::new(0, 3);
        assert!(m0.can_send());
        let (action, out) = m0.suspect::<()>(t(0), &[2]);
        assert_eq!(action, FlushAction::RetransmitUnstable);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, Wire::Flush { .. }));
        assert!(!m0.can_send(), "blackout during flush");
        assert!(m0.is_coordinator());
    }

    #[test]
    fn non_coordinator_waits() {
        let mut m1 = MembershipEngine::new(1, 3);
        let (action, out) = m1.suspect::<()>(t(0), &[2]);
        assert_eq!(action, FlushAction::None);
        assert!(out.is_empty());
        assert!(m1.can_send());
    }

    #[test]
    fn full_view_change_roundtrip() {
        let mut m0 = MembershipEngine::new(0, 3);
        let mut m1 = MembershipEngine::new(1, 3);
        // Member 2 dies; coordinator 0 flushes.
        let (_, out) = m0.suspect::<()>(t(0), &[2]);
        let flush = out[0].1.clone();
        // m1 receives Flush, retransmits unstable, FlushOks.
        let (a1, out1) = m1.on_wire(t(1), &flush, &vc(3));
        assert_eq!(a1, FlushAction::RetransmitUnstable);
        assert!(!m1.can_send());
        let flush_ok = out1[0].1.clone();
        assert_eq!(out1[0].0, Dest::One(0));
        // Coordinator collects; with m0 (implicit) + m1 that is everyone.
        let (a0, out0) = m0.on_wire(t(5), &flush_ok, &vc(3));
        match a0 {
            FlushAction::ViewInstalled(v) => {
                assert_eq!(v.id, ViewId(2));
                assert_eq!(v.members.len(), 2);
            }
            other => panic!("expected install, got {other:?}"),
        }
        let install = out0[0].1.clone();
        // m1 installs too.
        let (a1, _) = m1.on_wire(t(6), &install, &vc(3));
        assert!(matches!(a1, FlushAction::ViewInstalled(_)));
        assert!(m0.can_send() && m1.can_send());
        assert_eq!(m0.stats().view_changes, 1);
        assert_eq!(m1.stats().last_blackout, SimDuration::from_millis(5));
    }

    #[test]
    fn stale_flush_ignored() {
        let mut m = MembershipEngine::new(1, 3);
        let stale = Wire::<()>::Flush {
            proposed: View {
                id: ViewId(1), // not newer than current
                members: vec![ProcessId(0), ProcessId(1)],
            },
            from: 0,
        };
        let (a, out) = m.on_wire(t(0), &stale, &vc(3));
        assert_eq!(a, FlushAction::None);
        assert!(out.is_empty());
    }

    #[test]
    fn duplicate_install_ignored() {
        let mut m = MembershipEngine::new(1, 3);
        let v2 = View {
            id: ViewId(2),
            members: vec![ProcessId(0), ProcessId(1)],
        };
        let install = Wire::<()>::Install { view: v2.clone() };
        let (a, _) = m.on_wire(t(0), &install, &vc(3));
        assert!(matches!(a, FlushAction::ViewInstalled(_)));
        let (a, _) = m.on_wire(t(1), &install, &vc(3));
        assert_eq!(a, FlushAction::None);
        assert_eq!(m.stats().view_changes, 1);
    }

    #[test]
    fn suspicion_of_unknown_member_is_noop() {
        let mut m0 = MembershipEngine::new(0, 3);
        let (a, out) = m0.suspect::<()>(t(0), &[9]);
        assert_eq!(a, FlushAction::None);
        assert!(out.is_empty());
    }

    #[test]
    fn coordinator_death_promotes_next() {
        // Member 0 dies; member 1 becomes coordinator of the proposal.
        let mut m1 = MembershipEngine::new(1, 3);
        let (a, out) = m1.suspect::<()>(t(0), &[0]);
        assert_eq!(a, FlushAction::RetransmitUnstable);
        assert!(!out.is_empty());
        assert!(m1.is_coordinator());
    }
}
