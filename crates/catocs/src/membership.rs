//! View-synchronous membership with a flush protocol.
//!
//! When a member is suspected, the surviving coordinator (lowest live
//! member index) proposes a new view. Every member then *flushes*: it
//! stops sending new application messages (the paper's §4.4/§5 complaint:
//! "Membership change protocols also suppress the sending of new messages
//! during a significant portion of the protocol"), retransmits its
//! unstable messages so every survivor has them, and acknowledges with a
//! `FlushOk` carrying its delivered clock. When the coordinator has heard
//! from every proposed member it installs the view, ending the blackout.
//!
//! The fault-injection campaigns (see `catocs::vsync`) drive this engine
//! through partitions, crashes and heavy loss, which is where the original
//! fire-and-forget protocol wedged. The engine therefore also provides:
//!
//! - **Retry with bounded backoff** ([`MembershipEngine::on_tick`]): both
//!   the coordinator's `Flush` and each member's `FlushOk` are
//!   retransmitted until the view installs, so a single dropped message
//!   no longer freezes the view change forever.
//! - **Coordinator takeover**: if the proposing coordinator itself dies
//!   mid-flush, the next-lowest survivor supersedes the proposal with a
//!   higher view id instead of leaving every member wedged in the flush
//!   blackout.
//! - **Primary-partition rule**: a proposal must retain a strict majority
//!   of the currently installed view. A minority side of a partition
//!   stalls (keeps its old view, stays silent about membership) rather
//!   than installing a divergent view — the classic split-brain guard.
//! - **Flush cut**: the installed view carries a *cut* vector — the
//!   component-wise max of every `FlushOk` delivered clock. Messages from
//!   removed members at or below the cut are still deliverable after the
//!   install (they are part of the old view's agreed history); anything
//!   beyond the cut from a removed member must be discarded. This is the
//!   boundary the virtual-synchrony invariant checker enforces.
//!
//! Experiment T11 measures the two costs the paper predicts: flush
//! message count (grows with group size and unstable-buffer depth) and
//! blackout duration.
//!
//! Member identity note: inside this engine, `View.members` carries group
//! *member indices* wrapped as `ProcessId` — the engine is transport
//! agnostic, and the harness maps indices to simulator processes.

use crate::group::{View, ViewId};
use crate::wire::{Dest, Out, Wire};
use clocks::vector::VectorClock;
use serde::{Deserialize, Serialize};
use simnet::process::ProcessId;
use simnet::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// What the caller must do after handing the engine an event.
#[derive(Debug, PartialEq, Eq)]
pub enum FlushAction {
    /// Nothing further.
    None,
    /// Retransmit all unstable buffered messages to the group; the
    /// engine has already queued this member's `FlushOk`.
    RetransmitUnstable,
    /// A new view was installed (delivered as an ordered event), together
    /// with the flush cut agreed for it.
    ViewInstalled { view: View, cut: VectorClock },
}

/// Cumulative membership statistics.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MembershipStats {
    /// Views installed (beyond the initial one).
    pub view_changes: u64,
    /// Flush-protocol messages sent by this member.
    pub flush_msgs: u64,
    /// Flush/FlushOk retransmissions triggered by the retry timer.
    pub flush_retries: u64,
    /// Proposals refused because they would shrink below a majority of
    /// the installed view (partition minority side).
    pub minority_stalls: u64,
    /// Flush proposals superseded because their coordinator died.
    pub takeovers: u64,
    /// In-flight flushes abandoned because their coordinator was
    /// suspected and someone else coordinates the replacement.
    pub abandoned_flushes: u64,
    /// Proposals or installs rejected because their membership was not a
    /// subset of the installed view (a wedged evictee trying to rejoin —
    /// legitimate views only ever shrink).
    pub rejected_foreign: u64,
    /// Total time spent with sending suppressed.
    pub blackout_total: SimDuration,
    /// Duration of the most recent blackout.
    pub last_blackout: SimDuration,
}

/// What an in-progress flush is waiting on, as seen at one member — the
/// membership layer's contribution to the wait graph
/// ([`crate::waitgraph`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlushWaits {
    /// The coordinator of the proposal being flushed toward.
    pub coordinator: usize,
    /// When this member entered the flush.
    pub since: SimTime,
    /// Proposal members whose `FlushOk` the coordinator still lacks.
    /// Empty at non-coordinators (only the coordinator tracks acks).
    pub missing_acks: Vec<usize>,
}

#[derive(Debug)]
enum Phase {
    Normal,
    /// Flushing toward `proposed`; coordinator tracks acks (member index →
    /// that member's delivered clock, the inputs to the flush cut).
    Flushing {
        proposed: View,
        acks: BTreeMap<usize, VectorClock>,
        since: SimTime,
        last_send: SimTime,
        attempts: u32,
    },
}

/// The membership state machine for one member.
#[derive(Debug)]
pub struct MembershipEngine {
    me: usize,
    n: usize,
    view: View,
    phase: Phase,
    /// The cut agreed for the most recently installed view (all zeros for
    /// the initial view).
    last_cut: VectorClock,
    /// Base interval for flush retransmissions.
    retry_after: SimDuration,
    stats: MembershipStats,
}

impl MembershipEngine {
    /// Creates the engine for member `me` of an initial group of `n`.
    pub fn new(me: usize, n: usize) -> Self {
        MembershipEngine {
            me,
            n,
            view: View::initial((0..n).map(ProcessId).collect()),
            phase: Phase::Normal,
            last_cut: VectorClock::new(n),
            retry_after: SimDuration::from_millis(50),
            stats: MembershipStats::default(),
        }
    }

    /// Overrides the base flush-retry interval (backoff doubles from here,
    /// capped at 8×).
    pub fn set_retry_interval(&mut self, d: SimDuration) {
        self.retry_after = d;
    }

    /// The currently installed view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// The cut of the most recently installed view.
    pub fn last_cut(&self) -> &VectorClock {
        &self.last_cut
    }

    /// The proposal currently being flushed toward, if any.
    pub fn proposal(&self) -> Option<&View> {
        match &self.phase {
            Phase::Normal => None,
            Phase::Flushing { proposed, .. } => Some(proposed),
        }
    }

    /// Whether the member may send application multicasts right now.
    pub fn can_send(&self) -> bool {
        matches!(self.phase, Phase::Normal)
    }

    /// Statistics.
    pub fn stats(&self) -> &MembershipStats {
        &self.stats
    }

    /// The coordinator of a view: its lowest member index.
    fn coordinator_of(view: &View) -> usize {
        view.members.iter().map(|p| p.0).min().unwrap_or(0)
    }

    /// Live view of an in-progress flush, for the wait-graph collector:
    /// who coordinates it, when it began at this member, and — at the
    /// coordinator only, since only it tracks acks — which proposal
    /// members have not sent their `FlushOk` yet. `None` in
    /// [`Phase::Normal`]. Read-only.
    pub fn flush_waits(&self) -> Option<FlushWaits> {
        match &self.phase {
            Phase::Normal => None,
            Phase::Flushing {
                proposed,
                acks,
                since,
                ..
            } => {
                let coordinator = Self::coordinator_of(proposed);
                let missing_acks = if coordinator == self.me {
                    proposed
                        .members
                        .iter()
                        .map(|p| p.0)
                        .filter(|m| !acks.contains_key(m))
                        .collect()
                } else {
                    Vec::new()
                };
                Some(FlushWaits {
                    coordinator,
                    since: *since,
                    missing_acks,
                })
            }
        }
    }

    /// Whether this member coordinates the current (or proposed) view.
    pub fn is_coordinator(&self) -> bool {
        match &self.phase {
            Phase::Normal => Self::coordinator_of(&self.view) == self.me,
            Phase::Flushing { proposed, .. } => Self::coordinator_of(proposed) == self.me,
        }
    }

    /// Deterministic tie-break between two divergent proposals carrying
    /// the same view id (concurrent coordinators with split suspicion
    /// sets): the smaller membership wins, then the lower coordinator
    /// index. Every member applies the same rule, so all converge on one.
    fn proposal_beats(a: &View, b: &View) -> bool {
        (a.members.len(), Self::coordinator_of(a)) < (b.members.len(), Self::coordinator_of(b))
    }

    /// Reports the *full* current suspect set (already-excluded members
    /// are ignored). `delivered` is this member's delivered clock,
    /// seeding its own flush ack. If this member is the surviving
    /// coordinator of the resulting proposal, it initiates (or
    /// supersedes) the view change; otherwise nothing happens — it waits
    /// for the coordinator's `Flush`.
    ///
    /// Call this every tick while the suspect set is non-empty, not just
    /// on new suspicions: it is idempotent while nothing changes, and it
    /// is what un-wedges a flush whose proposal includes a member that
    /// died before acking. Proposals are always derived from the
    /// *installed view* minus the suspect set — never from the in-flight
    /// proposal. Deriving from the in-flight proposal could never
    /// re-admit a member whose suspicion proved transient (a healed
    /// partition), so a flush wedged on a dead proposal member would
    /// stall forever even though a live majority existed (chaos
    /// campaign seed 197 is the pinned regression).
    pub fn suspect<P>(
        &mut self,
        now: SimTime,
        dead: &[usize],
        delivered: &VectorClock,
    ) -> (FlushAction, Vec<Out<P>>) {
        let dead_pids: Vec<ProcessId> = dead.iter().map(|&d| ProcessId(d)).collect();
        let mut proposed = self.view.without(&dead_pids);
        if proposed.members.len() == self.view.members.len() {
            // Everyone suspected is already out of the view.
            return (FlushAction::None, Vec::new());
        }
        if let Phase::Flushing { proposed: cur, .. } = &self.phase {
            if cur.members == proposed.members {
                // Already flushing exactly this membership; `on_tick`
                // handles the retries.
                return (FlushAction::None, Vec::new());
            }
            if Self::coordinator_of(&proposed) != self.me
                && dead.contains(&Self::coordinator_of(cur))
            {
                // The in-flight proposal is doomed — its coordinator is
                // suspected — and someone else coordinates the viable
                // replacement. Abandon it; otherwise the same-id
                // tie-break can pin us to the dead coordinator's
                // proposal and reject the live coordinator's superseding
                // `Flush` forever (chaos seed 479). The replacement
                // coordinator keeps retrying, so we re-enter its flush
                // as soon as it reaches us.
                self.stats.abandoned_flushes += 1;
                self.phase = Phase::Normal;
                return (FlushAction::None, Vec::new());
            }
            // A different membership must supersede the in-flight
            // proposal everywhere, so it takes a strictly higher id.
            // This is also how the death of a proposing coordinator is
            // survived: the next-lowest member's proposal outranks it.
            proposed.id = ViewId(cur.id.0 + 1);
        }
        if Self::coordinator_of(&proposed) != self.me {
            return (FlushAction::None, Vec::new());
        }
        if 2 * proposed.members.len() <= self.view.members.len() {
            // Primary-partition rule: refuse to install a minority view.
            self.stats.minority_stalls += 1;
            return (FlushAction::None, Vec::new());
        }
        if matches!(self.phase, Phase::Flushing { .. }) {
            self.stats.takeovers += 1;
        }
        let mut acks = BTreeMap::new();
        acks.insert(self.me, delivered.clone());
        let flush = Wire::Flush {
            proposed: proposed.clone(),
            from: self.me,
        };
        self.stats.flush_msgs += 1;
        self.phase = Phase::Flushing {
            proposed,
            acks,
            since: now,
            last_send: now,
            attempts: 0,
        };
        (FlushAction::RetransmitUnstable, vec![(Dest::All, flush)])
    }

    /// Periodic maintenance: retransmits the in-flight `Flush` (as
    /// coordinator, to members that have not acked) or this member's
    /// `FlushOk`, with bounded exponential backoff. Without this, a single
    /// dropped flush message wedges the view change forever.
    pub fn on_tick<P>(&mut self, now: SimTime, delivered: &VectorClock) -> Vec<Out<P>> {
        let me = self.me;
        let retry = self.retry_after;
        let Phase::Flushing {
            proposed,
            acks,
            last_send,
            attempts,
            ..
        } = &mut self.phase
        else {
            return Vec::new();
        };
        let backoff = retry.saturating_mul(1u64 << (*attempts).min(3));
        if now.saturating_since(*last_send) < backoff {
            return Vec::new();
        }
        *last_send = now;
        *attempts += 1;
        self.stats.flush_retries += 1;
        let out: Vec<Out<P>> = if Self::coordinator_of(proposed) == me {
            acks.insert(me, delivered.clone());
            proposed
                .members
                .iter()
                .map(|m| m.0)
                .filter(|i| !acks.contains_key(i))
                .map(|i| {
                    (
                        Dest::One(i),
                        Wire::Flush {
                            proposed: proposed.clone(),
                            from: me,
                        },
                    )
                })
                .collect()
        } else {
            vec![(
                Dest::One(Self::coordinator_of(proposed)),
                Wire::FlushOk {
                    view_id: proposed.id,
                    from: me,
                    delivered: delivered.clone(),
                },
            )]
        };
        self.stats.flush_msgs += out.len() as u64;
        out
    }

    /// Handles a membership wire message. `delivered` is this member's
    /// current delivered clock (sent in `FlushOk`).
    pub fn on_wire<P>(
        &mut self,
        now: SimTime,
        wire: &Wire<P>,
        delivered: &VectorClock,
    ) -> (FlushAction, Vec<Out<P>>) {
        match wire {
            Wire::Flush { proposed, from } => {
                if proposed.id.0 <= self.view.id.0 {
                    // Stale: the proposer derived this from a view older
                    // than ours, so it missed at least one Install. Serve
                    // our view so it can catch up (its guards drop the
                    // reply if it already has).
                    return (FlushAction::None, self.repair_install(*from));
                }
                // Monotone-shrink guard: views only ever lose members, so
                // a legitimate proposal is always a subset of some view we
                // have installed (or a superset view we missed shrinking
                // from). A proposal containing a process we already
                // evicted is a wedged evictee trying to resurrect itself
                // with a high view id — reject it, or the evictee's
                // beyond-cut history would pollute the new view's cut.
                if !proposed
                    .members
                    .iter()
                    .all(|m| self.view.members.contains(m))
                {
                    // The proposer is flushing from a view we have since
                    // shrunk past (or it is an evictee that never learned
                    // it is out). Either way its proposal can never
                    // complete here — serve our Install so the straggler
                    // adopts the newer view instead of retrying forever
                    // (chaos seed 191: a concurrent higher-id proposal
                    // wedged three processes out of the installed view).
                    self.stats.rejected_foreign += 1;
                    return (FlushAction::None, self.repair_install(*from));
                }
                match &self.phase {
                    Phase::Flushing { proposed: cur, .. }
                        if cur.id == proposed.id && cur.members == proposed.members =>
                    {
                        // Retried copy of the proposal we are already
                        // flushing: fall through and re-ack (covers a
                        // lost FlushOk).
                    }
                    Phase::Flushing { proposed: cur, .. }
                        if cur.id.0 > proposed.id.0
                            || (cur.id == proposed.id && !Self::proposal_beats(proposed, cur)) =>
                    {
                        // Our in-flight proposal supersedes this one.
                        return (FlushAction::None, Vec::new());
                    }
                    _ => {
                        self.phase = Phase::Flushing {
                            proposed: proposed.clone(),
                            acks: BTreeMap::new(),
                            since: now,
                            last_send: now,
                            attempts: 0,
                        };
                    }
                }
                let ok = Wire::FlushOk {
                    view_id: proposed.id,
                    from: self.me,
                    delivered: delivered.clone(),
                };
                self.stats.flush_msgs += 1;
                (
                    FlushAction::RetransmitUnstable,
                    vec![(Dest::One(*from), ok)],
                )
            }
            Wire::FlushOk { view_id, from, .. } => {
                // Repair path: a FlushOk reaching a Normal-phase process
                // is evidence the sender missed an Install — either the
                // one for this very view (we coordinated it and the
                // broadcast was lost), or the sender is acking a doomed
                // proposal whose coordinator has since moved on (chaos
                // seed 191). Serve our installed view; the receiver's
                // guards drop it if it is not actually newer.
                if matches!(self.phase, Phase::Normal) && *from != self.me {
                    return (FlushAction::None, self.repair_install(*from));
                }
                let peer_delivered = match wire {
                    Wire::FlushOk { delivered, .. } => delivered.clone(),
                    _ => unreachable!("outer match arm is FlushOk"),
                };
                let install = match &mut self.phase {
                    Phase::Flushing { proposed, acks, .. }
                        if proposed.id == *view_id && Self::coordinator_of(proposed) == self.me =>
                    {
                        // Only proposal members feed the cut: a FlushOk
                        // from an outsider (an evictee that also received
                        // the broadcast Flush) would inflate the cut with
                        // deliveries no survivor is bound to.
                        if !proposed.members.iter().any(|m| m.0 == *from) {
                            self.stats.rejected_foreign += 1;
                            return (FlushAction::None, Vec::new());
                        }
                        acks.insert(*from, peer_delivered);
                        acks.insert(self.me, delivered.clone());
                        let everyone = proposed.members.iter().all(|m| acks.contains_key(&m.0));
                        everyone.then(|| {
                            let mut cut = VectorClock::new(self.n);
                            for d in acks.values() {
                                cut.merge(d);
                            }
                            (proposed.clone(), cut)
                        })
                    }
                    _ => None,
                };
                if let Some((view, cut)) = install {
                    let msg = Wire::Install {
                        view: view.clone(),
                        cut: cut.clone(),
                    };
                    self.stats.flush_msgs += 1;
                    let action = self.install(now, view, cut);
                    (action, vec![(Dest::All, msg)])
                } else {
                    (FlushAction::None, Vec::new())
                }
            }
            Wire::Install { view, cut } => {
                if view.id.0 <= self.view.id.0 {
                    return (FlushAction::None, Vec::new());
                }
                // Same monotone-shrink guard as for proposals.
                if !view.members.iter().all(|m| self.view.members.contains(m)) {
                    self.stats.rejected_foreign += 1;
                    return (FlushAction::None, Vec::new());
                }
                let action = self.install(now, view.clone(), cut.clone());
                (action, Vec::new())
            }
            _ => (FlushAction::None, Vec::new()),
        }
    }

    /// Heartbeat-borne anti-entropy: a peer advertising an older view id
    /// missed at least one `Install` — serve ours. This is the only
    /// repair path that reaches a straggler which is neither proposing
    /// nor acking (e.g. one that abandoned a doomed flush and sits in
    /// Normal phase at the old view, chaos seed 206).
    pub fn on_heartbeat<P>(&mut self, from: usize, view_id: ViewId) -> Vec<Out<P>> {
        if view_id.0 < self.view.id.0 {
            self.repair_install(from)
        } else {
            Vec::new()
        }
    }

    /// A one-shot `Install` of the current view, sent to a straggler that
    /// evidently missed it. Receiver guards (id monotonicity, subset
    /// check) make a misdirected repair a no-op.
    fn repair_install<P>(&mut self, to: usize) -> Vec<Out<P>> {
        self.stats.flush_msgs += 1;
        vec![(
            Dest::One(to),
            Wire::Install {
                view: self.view.clone(),
                cut: self.last_cut.clone(),
            },
        )]
    }

    fn install(&mut self, now: SimTime, view: View, cut: VectorClock) -> FlushAction {
        if let Phase::Flushing { since, .. } = self.phase {
            let blackout = now.saturating_since(since);
            self.stats.blackout_total += blackout;
            self.stats.last_blackout = blackout;
        }
        self.view = view.clone();
        self.last_cut = cut.clone();
        self.phase = Phase::Normal;
        self.stats.view_changes += 1;
        FlushAction::ViewInstalled { view, cut }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::ViewId;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn vc(n: usize) -> VectorClock {
        VectorClock::new(n)
    }

    #[test]
    fn coordinator_initiates_on_suspicion() {
        let mut m0 = MembershipEngine::new(0, 3);
        assert!(m0.can_send());
        let (action, out) = m0.suspect::<()>(t(0), &[2], &vc(3));
        assert_eq!(action, FlushAction::RetransmitUnstable);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, Wire::Flush { .. }));
        assert!(!m0.can_send(), "blackout during flush");
        assert!(m0.is_coordinator());
        assert!(m0.proposal().is_some());
    }

    #[test]
    fn non_coordinator_waits() {
        let mut m1 = MembershipEngine::new(1, 3);
        let (action, out) = m1.suspect::<()>(t(0), &[2], &vc(3));
        assert_eq!(action, FlushAction::None);
        assert!(out.is_empty());
        assert!(m1.can_send());
    }

    #[test]
    fn full_view_change_roundtrip() {
        let mut m0 = MembershipEngine::new(0, 3);
        let mut m1 = MembershipEngine::new(1, 3);
        // Member 2 dies; coordinator 0 flushes.
        let (_, out) = m0.suspect::<()>(t(0), &[2], &vc(3));
        let flush = out[0].1.clone();
        // m1 receives Flush, retransmits unstable, FlushOks.
        let (a1, out1) = m1.on_wire(t(1), &flush, &vc(3));
        assert_eq!(a1, FlushAction::RetransmitUnstable);
        assert!(!m1.can_send());
        let flush_ok = out1[0].1.clone();
        assert_eq!(out1[0].0, Dest::One(0));
        // Coordinator collects; with m0 (implicit) + m1 that is everyone.
        let (a0, out0) = m0.on_wire(t(5), &flush_ok, &vc(3));
        match a0 {
            FlushAction::ViewInstalled { view, .. } => {
                assert_eq!(view.id, ViewId(2));
                assert_eq!(view.members.len(), 2);
            }
            other => panic!("expected install, got {other:?}"),
        }
        let install = out0[0].1.clone();
        // m1 installs too.
        let (a1, _) = m1.on_wire(t(6), &install, &vc(3));
        assert!(matches!(a1, FlushAction::ViewInstalled { .. }));
        assert!(m0.can_send() && m1.can_send());
        assert_eq!(m0.stats().view_changes, 1);
        assert_eq!(m1.stats().last_blackout, SimDuration::from_millis(5));
    }

    #[test]
    fn cut_is_max_of_flush_ok_clocks() {
        let mut m0 = MembershipEngine::new(0, 3);
        let my_clock = VectorClock::from_entries(vec![4, 0, 2]);
        let (_, _) = m0.suspect::<()>(t(0), &[2], &my_clock);
        let peer_clock = VectorClock::from_entries(vec![3, 5, 1]);
        let ok = Wire::<()>::FlushOk {
            view_id: ViewId(2),
            from: 1,
            delivered: peer_clock,
        };
        let (a, _) = m0.on_wire(t(1), &ok, &my_clock);
        match a {
            FlushAction::ViewInstalled { cut, .. } => {
                assert_eq!(cut, VectorClock::from_entries(vec![4, 5, 2]));
            }
            other => panic!("expected install, got {other:?}"),
        }
        assert_eq!(m0.last_cut(), &VectorClock::from_entries(vec![4, 5, 2]));
    }

    #[test]
    fn stale_flush_ignored() {
        let mut m = MembershipEngine::new(1, 3);
        let stale = Wire::<()>::Flush {
            proposed: View {
                id: ViewId(1), // not newer than current
                members: vec![ProcessId(0), ProcessId(1)],
            },
            from: 0,
        };
        let (a, out) = m.on_wire(t(0), &stale, &vc(3));
        assert_eq!(a, FlushAction::None);
        // A stale proposer has missed an Install: the reply serves the
        // current view so it can catch up.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, Dest::One(0));
        assert!(matches!(out[0].1, Wire::Install { .. }));
    }

    #[test]
    fn duplicate_install_ignored() {
        let mut m = MembershipEngine::new(1, 3);
        let v2 = View {
            id: ViewId(2),
            members: vec![ProcessId(0), ProcessId(1)],
        };
        let install = Wire::<()>::Install {
            view: v2.clone(),
            cut: vc(3),
        };
        let (a, _) = m.on_wire(t(0), &install, &vc(3));
        assert!(matches!(a, FlushAction::ViewInstalled { .. }));
        let (a, _) = m.on_wire(t(1), &install, &vc(3));
        assert_eq!(a, FlushAction::None);
        assert_eq!(m.stats().view_changes, 1);
    }

    #[test]
    fn suspicion_of_unknown_member_is_noop() {
        let mut m0 = MembershipEngine::new(0, 3);
        let (a, out) = m0.suspect::<()>(t(0), &[9], &vc(3));
        assert_eq!(a, FlushAction::None);
        assert!(out.is_empty());
    }

    #[test]
    fn coordinator_death_promotes_next() {
        // Member 0 dies; member 1 becomes coordinator of the proposal.
        let mut m1 = MembershipEngine::new(1, 3);
        let (a, out) = m1.suspect::<()>(t(0), &[0], &vc(3));
        assert_eq!(a, FlushAction::RetransmitUnstable);
        assert!(!out.is_empty());
        assert!(m1.is_coordinator());
    }

    #[test]
    fn coordinator_retries_flush_until_acked() {
        // S2 regression: a lost Flush used to wedge the change forever.
        let mut m0 = MembershipEngine::new(0, 4);
        m0.set_retry_interval(SimDuration::from_millis(20));
        let (_, first) = m0.suspect::<()>(t(0), &[3], &vc(4));
        assert_eq!(first.len(), 1);
        // Too early: nothing.
        assert!(m0.on_tick::<()>(t(10), &vc(4)).is_empty());
        // First retry after the base interval, to the members that have
        // not acked (1 and 2).
        let r1 = m0.on_tick::<()>(t(20), &vc(4));
        assert_eq!(r1.len(), 2);
        assert!(r1.iter().all(|(d, w)| matches!(w, Wire::Flush { .. })
            && matches!(d, Dest::One(k) if *k == 1 || *k == 2)));
        // Backoff doubles: next at +40ms, not +20ms.
        assert!(m0.on_tick::<()>(t(40), &vc(4)).is_empty());
        let r2 = m0.on_tick::<()>(t(60), &vc(4));
        assert_eq!(r2.len(), 2);
        assert_eq!(m0.stats().flush_retries, 2);
        // An ack narrows the retry fan-out.
        let ok = Wire::<()>::FlushOk {
            view_id: ViewId(2),
            from: 1,
            delivered: vc(4),
        };
        m0.on_wire(t(70), &ok, &vc(4));
        let r3 = m0.on_tick::<()>(t(1000), &vc(4));
        assert_eq!(r3.len(), 1);
        assert!(matches!(r3[0].0, Dest::One(2)));
    }

    #[test]
    fn member_retries_flush_ok() {
        let mut m1 = MembershipEngine::new(1, 3);
        m1.set_retry_interval(SimDuration::from_millis(20));
        let flush = Wire::<()>::Flush {
            proposed: View {
                id: ViewId(2),
                members: vec![ProcessId(0), ProcessId(1)],
            },
            from: 0,
        };
        m1.on_wire(t(0), &flush, &vc(3));
        let r = m1.on_tick::<()>(t(25), &vc(3));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].0, Dest::One(0));
        assert!(matches!(r[0].1, Wire::FlushOk { .. }));
    }

    #[test]
    fn duplicate_flush_reacks() {
        // A retried Flush (the coordinator never saw our FlushOk) must be
        // re-acked, not ignored.
        let mut m1 = MembershipEngine::new(1, 3);
        let flush = Wire::<()>::Flush {
            proposed: View {
                id: ViewId(2),
                members: vec![ProcessId(0), ProcessId(1)],
            },
            from: 0,
        };
        let (_, out1) = m1.on_wire(t(0), &flush, &vc(3));
        assert!(matches!(out1[0].1, Wire::FlushOk { .. }));
        let (_, out2) = m1.on_wire(t(5), &flush, &vc(3));
        assert!(matches!(out2[0].1, Wire::FlushOk { .. }));
    }

    #[test]
    fn flush_ok_after_install_reserves_install() {
        // The Install was lost; the member keeps retrying FlushOk; the
        // coordinator (already Normal in the new view) must re-serve the
        // Install rather than ignore the ack.
        let mut m0 = MembershipEngine::new(0, 3);
        let (_, _) = m0.suspect::<()>(t(0), &[2], &vc(3));
        let ok = Wire::<()>::FlushOk {
            view_id: ViewId(2),
            from: 1,
            delivered: vc(3),
        };
        let (a, _) = m0.on_wire(t(1), &ok, &vc(3));
        assert!(matches!(a, FlushAction::ViewInstalled { .. }));
        // The member retries its ack.
        let (a, out) = m0.on_wire(t(100), &ok, &vc(3));
        assert_eq!(a, FlushAction::None);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, Dest::One(1));
        assert!(matches!(out[0].1, Wire::Install { .. }));
    }

    #[test]
    fn foreign_member_proposal_rejected() {
        // m1 installed {0,1} (2 evicted); a wedged 2 later proposes a
        // higher-id view containing itself. The monotone-shrink guard
        // must refuse it — accepting would resurrect the evictee with
        // inconsistent cut state at every survivor.
        let mut m1 = MembershipEngine::new(1, 3);
        let v2 = View {
            id: ViewId(2),
            members: vec![ProcessId(0), ProcessId(1)],
        };
        m1.on_wire::<()>(
            t(0),
            &Wire::Install {
                view: v2,
                cut: vc(3),
            },
            &vc(3),
        );
        let rejoin = Wire::<()>::Flush {
            proposed: View {
                id: ViewId(3),
                members: vec![ProcessId(1), ProcessId(2)],
            },
            from: 2,
        };
        let (a, out) = m1.on_wire(t(1), &rejoin, &vc(3));
        assert_eq!(a, FlushAction::None);
        // The rejection carries a repair Install so the wedged evictee
        // learns it is out instead of retrying forever.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, Dest::One(2));
        assert!(matches!(out[0].1, Wire::Install { .. }));
        assert!(m1.can_send(), "guarded member never entered the flush");
        assert_eq!(m1.stats().rejected_foreign, 1);
        // Same guard for a direct Install.
        let install = Wire::<()>::Install {
            view: View {
                id: ViewId(3),
                members: vec![ProcessId(1), ProcessId(2)],
            },
            cut: vc(3),
        };
        let (a, _) = m1.on_wire(t(2), &install, &vc(3));
        assert_eq!(a, FlushAction::None);
        assert_eq!(m1.view().id, ViewId(2));
        assert_eq!(m1.stats().rejected_foreign, 2);
    }

    #[test]
    fn flush_ok_from_non_member_does_not_pollute_cut() {
        // 0 proposes {0,1} (2 evicted). The evictee, having received the
        // broadcast Flush, acks with a clock far beyond anything the
        // survivors delivered. Its ack must not count toward completion
        // or the cut.
        let mut m0 = MembershipEngine::new(0, 3);
        let my_clock = VectorClock::from_entries(vec![1, 0, 0]);
        let (_, _) = m0.suspect::<()>(t(0), &[2], &my_clock);
        let evictee_ok = Wire::<()>::FlushOk {
            view_id: ViewId(2),
            from: 2,
            delivered: VectorClock::from_entries(vec![1, 0, 9]),
        };
        let (a, out) = m0.on_wire(t(1), &evictee_ok, &my_clock);
        assert_eq!(a, FlushAction::None, "outsider ack must not complete");
        assert!(out.is_empty());
        assert_eq!(m0.stats().rejected_foreign, 1);
        let ok = Wire::<()>::FlushOk {
            view_id: ViewId(2),
            from: 1,
            delivered: VectorClock::from_entries(vec![1, 2, 0]),
        };
        let (a, _) = m0.on_wire(t(2), &ok, &my_clock);
        match a {
            FlushAction::ViewInstalled { cut, .. } => {
                assert_eq!(
                    cut,
                    VectorClock::from_entries(vec![1, 2, 0]),
                    "cut reflects proposal members only"
                );
            }
            other => panic!("expected install, got {other:?}"),
        }
    }

    #[test]
    fn coordinator_death_mid_flush_is_superseded() {
        // In a group of 5, 0 proposes {0,1,2,3} (4 died); then 0 dies
        // too. 1 must supersede with a higher-id proposal instead of
        // leaving everyone wedged in the flush blackout.
        let mut m1 = MembershipEngine::new(1, 5);
        let flush = Wire::<()>::Flush {
            proposed: View {
                id: ViewId(2),
                members: vec![ProcessId(0), ProcessId(1), ProcessId(2), ProcessId(3)],
            },
            from: 0,
        };
        m1.on_wire(t(0), &flush, &vc(5));
        assert!(!m1.can_send());
        // Full suspect set: 4 (the original death) plus 0 (the dead
        // coordinator). Proposals derive from the installed view minus
        // this set, so both must be reported.
        let (a, out) = m1.suspect::<()>(t(50), &[0, 4], &vc(5));
        assert_eq!(a, FlushAction::RetransmitUnstable);
        match &out[0].1 {
            Wire::Flush { proposed, from } => {
                assert_eq!(*from, 1);
                assert_eq!(proposed.id, ViewId(3));
                assert_eq!(
                    proposed.members,
                    vec![ProcessId(1), ProcessId(2), ProcessId(3)]
                );
            }
            other => panic!("expected superseding flush, got {other:?}"),
        }
        assert_eq!(m1.stats().takeovers, 1);
    }

    #[test]
    fn doomed_flush_abandoned_when_coordinator_suspected() {
        // m2 (group of 5) joins 0's flush toward {0,1,2,3}; then 0 dies
        // too. m2 cannot coordinate the replacement, so it must abandon
        // the doomed proposal — otherwise the same-id tie-break pins it
        // to the dead coordinator's proposal and it rejects the live
        // coordinator's superseding Flush forever (chaos seed 479).
        let mut m2 = MembershipEngine::new(2, 5);
        let flush = Wire::<()>::Flush {
            proposed: View {
                id: ViewId(2),
                members: vec![ProcessId(0), ProcessId(1), ProcessId(2), ProcessId(3)],
            },
            from: 0,
        };
        m2.on_wire(t(0), &flush, &vc(5));
        assert!(!m2.can_send());
        let (a, out) = m2.suspect::<()>(t(50), &[0, 4], &vc(5));
        assert_eq!(a, FlushAction::None);
        assert!(out.is_empty());
        assert_eq!(m2.stats().abandoned_flushes, 1);
        assert!(m2.proposal().is_none());
        // The live coordinator's superseding proposal is now adoptable.
        let flush2 = Wire::<()>::Flush {
            proposed: View {
                id: ViewId(3),
                members: vec![ProcessId(1), ProcessId(2), ProcessId(3)],
            },
            from: 1,
        };
        let (a, out) = m2.on_wire(t(60), &flush2, &vc(5));
        assert_eq!(a, FlushAction::RetransmitUnstable);
        assert!(matches!(out[0].1, Wire::FlushOk { .. }));
    }

    #[test]
    fn heartbeat_from_stale_view_triggers_install_repair() {
        // A straggler that missed an Install and is neither proposing
        // nor acking has no retry path pointed at it; its heartbeats
        // advertise the stale view id and any newer peer repairs it.
        let mut m1 = MembershipEngine::new(1, 3);
        let v2 = View {
            id: ViewId(2),
            members: vec![ProcessId(0), ProcessId(1)],
        };
        m1.on_wire::<()>(
            t(0),
            &Wire::Install {
                view: v2,
                cut: vc(3),
            },
            &vc(3),
        );
        let out = m1.on_heartbeat::<()>(2, ViewId(1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, Dest::One(2));
        assert!(matches!(out[0].1, Wire::Install { .. }));
        // A peer at the same (or newer) view needs no repair.
        assert!(m1.on_heartbeat::<()>(0, ViewId(2)).is_empty());
    }

    #[test]
    fn minority_proposal_stalls() {
        // In a group of 4, a 2-member proposal is not a strict majority:
        // the minority side of an even split must not install.
        let mut m0 = MembershipEngine::new(0, 4);
        let (a, out) = m0.suspect::<()>(t(0), &[2, 3], &vc(4));
        assert_eq!(a, FlushAction::None);
        assert!(out.is_empty());
        assert!(m0.can_send(), "stalled, not flushing");
        assert_eq!(m0.stats().minority_stalls, 1);
        // A 3-member proposal is a majority and proceeds.
        let (a, _) = m0.suspect::<()>(t(1), &[3], &vc(4));
        assert_eq!(a, FlushAction::RetransmitUnstable);
    }

    #[test]
    fn same_id_divergent_proposals_tie_break() {
        // Split suspicion: 1 proposes {1,2,3,4} (0 dead), 2 proposes
        // {2,3,4} (0 and 1 dead), both id 2. Smaller membership wins
        // everywhere, so member 3 must adopt 2's proposal even after
        // acking 1's.
        let mut m3 = MembershipEngine::new(3, 5);
        let big = Wire::<()>::Flush {
            proposed: View {
                id: ViewId(2),
                members: vec![ProcessId(1), ProcessId(2), ProcessId(3), ProcessId(4)],
            },
            from: 1,
        };
        let small = Wire::<()>::Flush {
            proposed: View {
                id: ViewId(2),
                members: vec![ProcessId(2), ProcessId(3), ProcessId(4)],
            },
            from: 2,
        };
        let (_, out_big) = m3.on_wire(t(0), &big, &vc(5));
        assert_eq!(out_big[0].0, Dest::One(1));
        let (_, out_small) = m3.on_wire(t(1), &small, &vc(5));
        assert_eq!(out_small[0].0, Dest::One(2), "adopted the smaller proposal");
        // The loser arriving after the winner is ignored.
        let (a, out) = m3.on_wire(t(2), &big, &vc(5));
        assert_eq!(a, FlushAction::None);
        assert!(out.is_empty());
    }
}
