//! Versioned object stores: per-object state clocks.
//!
//! The shared manufacturing database of §3.1: "if 'lot status' records
//! contained version numbers, then any recipient can easily and correctly
//! order the messages. ... the provision of these version numbers, which
//! can be viewed as logical clocks on the database state, obviates the
//! need for CATOCS."

use clocks::versions::{ObjectId, Version, VersionedTag};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Outcome of applying a versioned update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Applied {
    /// The update advanced the object to this version.
    Fresh(Version),
    /// The update was older than (or equal to) the stored version and was
    /// ignored — the prescriptive-ordering fix for misordered delivery.
    Stale { stored: Version, offered: Version },
    /// The update skipped versions; applied, with the gap noted (callers
    /// that need gap-free histories use [`crate::prescriptive`] instead).
    FreshWithGap { from: Version, to: Version },
}

/// A record in the store.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VersionedRecord<V> {
    /// Current version.
    pub version: Version,
    /// Current value.
    pub value: V,
}

/// A map of objects to versioned values with last-writer-wins-by-version
/// semantics.
///
/// # Examples
///
/// ```
/// use statelevel::versioned::{Applied, VersionedStore};
/// use clocks::versions::{ObjectId, Version, VersionedTag};
///
/// let mut store = VersionedStore::new();
/// let lot = ObjectId(42);
/// // "Stop" (v2) arrives before "Start" (v1) — the Figure 2 anomaly.
/// store.apply_remote(VersionedTag::new(lot, Version(2)), "stopped");
/// let late = store.apply_remote(VersionedTag::new(lot, Version(1)), "started");
/// assert!(matches!(late, Applied::Stale { .. }));
/// assert_eq!(store.get(lot).unwrap().value, "stopped");
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct VersionedStore<V> {
    records: BTreeMap<ObjectId, VersionedRecord<V>>,
    stale_rejected: u64,
    gaps_observed: u64,
}

impl<V> VersionedStore<V> {
    /// An empty store.
    pub fn new() -> Self {
        VersionedStore {
            records: BTreeMap::new(),
            stale_rejected: 0,
            gaps_observed: 0,
        }
    }

    /// Performs a local update: bumps the object's version and stores
    /// `value`. Returns the new tag (to be carried in the outgoing
    /// message's designated version field).
    pub fn update_local(&mut self, object: ObjectId, value: V) -> VersionedTag {
        let rec = self
            .records
            .entry(object)
            .or_insert_with(|| VersionedRecord {
                version: Version::INITIAL,
                value,
            });
        rec.version = rec.version.next();
        VersionedTag::new(object, rec.version)
    }

    /// Performs a local update where the caller supplies the value after
    /// learning the version (read-modify-write).
    pub fn update_local_with(
        &mut self,
        object: ObjectId,
        f: impl FnOnce(Option<&V>) -> V,
    ) -> VersionedTag {
        let next = self
            .records
            .get(&object)
            .map(|r| r.version.next())
            .unwrap_or(Version(1));
        let value = f(self.records.get(&object).map(|r| &r.value));
        self.records.insert(
            object,
            VersionedRecord {
                version: next,
                value,
            },
        );
        VersionedTag::new(object, next)
    }

    /// Applies a replicated update received from elsewhere, carrying an
    /// explicit version. Stale versions are rejected — this is the whole
    /// trick: delivery order no longer matters.
    pub fn apply_remote(&mut self, tag: VersionedTag, value: V) -> Applied {
        match self.records.get_mut(&tag.object) {
            Some(rec) if tag.version <= rec.version => {
                self.stale_rejected += 1;
                Applied::Stale {
                    stored: rec.version,
                    offered: tag.version,
                }
            }
            Some(rec) => {
                let gap = tag.version.0 > rec.version.0 + 1;
                let from = rec.version;
                rec.version = tag.version;
                rec.value = value;
                if gap {
                    self.gaps_observed += 1;
                    Applied::FreshWithGap {
                        from,
                        to: tag.version,
                    }
                } else {
                    Applied::Fresh(tag.version)
                }
            }
            None => {
                let gap = tag.version.0 > 1;
                self.records.insert(
                    tag.object,
                    VersionedRecord {
                        version: tag.version,
                        value,
                    },
                );
                if gap {
                    self.gaps_observed += 1;
                    Applied::FreshWithGap {
                        from: Version::INITIAL,
                        to: tag.version,
                    }
                } else {
                    Applied::Fresh(tag.version)
                }
            }
        }
    }

    /// Reads the current record for `object`.
    pub fn get(&self, object: ObjectId) -> Option<&VersionedRecord<V>> {
        self.records.get(&object)
    }

    /// The current version of `object` (INITIAL if absent).
    pub fn version_of(&self, object: ObjectId) -> Version {
        self.records
            .get(&object)
            .map(|r| r.version)
            .unwrap_or(Version::INITIAL)
    }

    /// Number of stale updates rejected so far.
    pub fn stale_rejected(&self) -> u64 {
        self.stale_rejected
    }

    /// Number of version gaps observed so far.
    pub fn gaps_observed(&self) -> u64 {
        self.gaps_observed
    }

    /// Number of objects stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over all records.
    pub fn iter(&self) -> impl Iterator<Item = (&ObjectId, &VersionedRecord<V>)> {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn obj(i: u64) -> ObjectId {
        ObjectId(i)
    }

    #[test]
    fn local_updates_advance_versions() {
        let mut s = VersionedStore::new();
        let t1 = s.update_local(obj(1), "a");
        let t2 = s.update_local(obj(1), "a");
        assert_eq!(t1.version, Version(1));
        assert_eq!(t2.version, Version(2));
        assert_eq!(s.version_of(obj(1)), Version(2));
        assert_eq!(s.version_of(obj(9)), Version::INITIAL);
    }

    #[test]
    fn remote_updates_in_order() {
        let mut s = VersionedStore::new();
        assert_eq!(
            s.apply_remote(VersionedTag::new(obj(1), Version(1)), "v1"),
            Applied::Fresh(Version(1))
        );
        assert_eq!(
            s.apply_remote(VersionedTag::new(obj(1), Version(2)), "v2"),
            Applied::Fresh(Version(2))
        );
        assert_eq!(s.get(obj(1)).unwrap().value, "v2");
    }

    #[test]
    fn misordered_delivery_is_harmless() {
        // The Figure 2 fix: "Stop" (v2) arrives before "Start" (v1); the
        // late "Start" is rejected as stale, so the final state is right.
        let mut s = VersionedStore::new();
        s.apply_remote(VersionedTag::new(obj(7), Version(2)), "stopped");
        let r = s.apply_remote(VersionedTag::new(obj(7), Version(1)), "started");
        assert_eq!(
            r,
            Applied::Stale {
                stored: Version(2),
                offered: Version(1)
            }
        );
        assert_eq!(s.get(obj(7)).unwrap().value, "stopped");
        assert_eq!(s.stale_rejected(), 1);
    }

    #[test]
    fn gaps_are_noted() {
        let mut s = VersionedStore::new();
        s.apply_remote(VersionedTag::new(obj(1), Version(1)), 10);
        match s.apply_remote(VersionedTag::new(obj(1), Version(5)), 50) {
            Applied::FreshWithGap { from, to } => {
                assert_eq!(from, Version(1));
                assert_eq!(to, Version(5));
            }
            other => panic!("expected gap, got {other:?}"),
        }
        assert_eq!(s.gaps_observed(), 1);
    }

    #[test]
    fn read_modify_write() {
        let mut s: VersionedStore<u32> = VersionedStore::new();
        s.update_local_with(obj(1), |old| old.copied().unwrap_or(0) + 1);
        s.update_local_with(obj(1), |old| old.copied().unwrap_or(0) + 1);
        assert_eq!(s.get(obj(1)).unwrap().value, 2);
        assert_eq!(s.version_of(obj(1)), Version(2));
        assert!(!s.is_empty());
        assert_eq!(s.len(), 1);
    }

    proptest! {
        /// Any permutation of a version sequence converges to the maximum
        /// version — delivery order is irrelevant.
        #[test]
        fn permutation_invariance(mut order in Just((1u64..=8).collect::<Vec<_>>()).prop_shuffle()) {
            let mut s = VersionedStore::new();
            for &v in &order {
                s.apply_remote(VersionedTag::new(obj(1), Version(v)), v);
            }
            prop_assert_eq!(s.version_of(obj(1)), Version(8));
            prop_assert_eq!(s.get(obj(1)).unwrap().value, 8);
            order.sort_unstable();
        }

        /// Stale rejections never decrease the stored version.
        #[test]
        fn version_monotone(updates in proptest::collection::vec((1u64..4, 1u64..10), 1..40)) {
            let mut s = VersionedStore::new();
            let mut high: BTreeMap<u64, u64> = BTreeMap::new();
            for (o, v) in updates {
                s.apply_remote(VersionedTag::new(obj(o), Version(v)), v);
                let h = high.entry(o).or_insert(0);
                *h = (*h).max(v);
            }
            for (o, h) in high {
                prop_assert_eq!(s.version_of(obj(o)), Version(h));
            }
        }
    }
}
