//! Dependency tracking for computed data — the trading-floor fix (§4.1).
//!
//! "In production systems we have designed, every pricing service
//! maintains version numbers on security prices ... Each computed data
//! object records the id and version number of its base data object in a
//! designated 'dependency' field. General-purpose utilities maintain the
//! dependencies among data objects, and applications exploit this
//! information in ordering and presenting data."
//!
//! [`DependencyTracker`] is that general-purpose utility: it remembers the
//! latest version of every base object and classifies each incoming
//! derived datum as *current* or *stale*. A monitor using it can never
//! display the Figure 4 false crossing: a theoretical price derived from
//! option-price v1 is flagged stale the moment option-price v2 is known.

use clocks::versions::{DependencyStamp, ObjectId, Version, VersionedTag};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Classification of a derived datum on arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Freshness {
    /// Derived from the latest known base version (or not derived at all).
    Current,
    /// Derived from an older base version than the latest known.
    Stale {
        /// The base version the datum was computed from.
        based_on: Version,
        /// The latest base version known here.
        latest: Version,
    },
    /// Derived from a base version *newer* than any update seen here —
    /// the base update is in flight; the datum is usable and also tells
    /// us the base has advanced.
    AheadOfBase,
}

/// The state-level dependency utility.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DependencyTracker {
    /// Latest known version per base object.
    latest: BTreeMap<ObjectId, Version>,
    stale_flagged: u64,
    ahead_observed: u64,
}

impl DependencyTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an observed base-object update (e.g. a raw option price).
    /// Returns true if it advanced the known version.
    pub fn observe_base(&mut self, tag: VersionedTag) -> bool {
        let e = self.latest.entry(tag.object).or_insert(Version::INITIAL);
        if tag.version > *e {
            *e = tag.version;
            true
        } else {
            false
        }
    }

    /// Classifies a derived datum carrying `stamp` against current
    /// knowledge, and folds any dependency information it carries into
    /// the tracker (a dependency on base v7 proves base v7 exists).
    pub fn classify(&mut self, stamp: &DependencyStamp) -> Freshness {
        let Some(dep) = stamp.depends_on else {
            return Freshness::Current;
        };
        let latest = self
            .latest
            .get(&dep.object)
            .copied()
            .unwrap_or(Version::INITIAL);
        if dep.version > latest {
            // Learn from the stamp itself.
            self.latest.insert(dep.object, dep.version);
            self.ahead_observed += 1;
            Freshness::AheadOfBase
        } else if dep.version < latest {
            self.stale_flagged += 1;
            Freshness::Stale {
                based_on: dep.version,
                latest,
            }
        } else {
            Freshness::Current
        }
    }

    /// The latest known version of `object`.
    pub fn latest_of(&self, object: ObjectId) -> Version {
        self.latest
            .get(&object)
            .copied()
            .unwrap_or(Version::INITIAL)
    }

    /// Derived data flagged stale so far.
    pub fn stale_flagged(&self) -> u64 {
        self.stale_flagged
    }

    /// Derived data that ran ahead of their base updates.
    pub fn ahead_observed(&self) -> u64 {
        self.ahead_observed
    }

    /// Number of base objects tracked.
    pub fn tracked_objects(&self) -> usize {
        self.latest.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(o: u64, v: u64) -> VersionedTag {
        VersionedTag::new(ObjectId(o), Version(v))
    }

    #[test]
    fn underived_data_is_always_current() {
        let mut t = DependencyTracker::new();
        let stamp = DependencyStamp::base(ObjectId(1), Version(5));
        assert_eq!(t.classify(&stamp), Freshness::Current);
    }

    #[test]
    fn figure4_false_crossing_detected() {
        // Option price v1 → theoretical (derived from v1); then option
        // price v2 arrives; the old theoretical must be flagged stale.
        let mut t = DependencyTracker::new();
        t.observe_base(tag(1, 1));
        let theo_v1 = DependencyStamp::derived(ObjectId(2), Version(1), tag(1, 1));
        assert_eq!(t.classify(&theo_v1), Freshness::Current);
        t.observe_base(tag(1, 2));
        assert_eq!(
            t.classify(&theo_v1),
            Freshness::Stale {
                based_on: Version(1),
                latest: Version(2)
            }
        );
        assert_eq!(t.stale_flagged(), 1);
    }

    #[test]
    fn derived_ahead_of_base_teaches_the_tracker() {
        // Theoretical derived from option v3 arrives before option v3
        // itself (misordered network) — the stamp proves v3 exists.
        let mut t = DependencyTracker::new();
        t.observe_base(tag(1, 2));
        let theo = DependencyStamp::derived(ObjectId(2), Version(7), tag(1, 3));
        assert_eq!(t.classify(&theo), Freshness::AheadOfBase);
        assert_eq!(t.latest_of(ObjectId(1)), Version(3));
        // The late-arriving base v3 no longer advances anything.
        assert!(!t.observe_base(tag(1, 3)));
        assert_eq!(t.ahead_observed(), 1);
    }

    #[test]
    fn observe_base_monotone() {
        let mut t = DependencyTracker::new();
        assert!(t.observe_base(tag(1, 2)));
        assert!(!t.observe_base(tag(1, 1)));
        assert_eq!(t.latest_of(ObjectId(1)), Version(2));
        assert_eq!(t.tracked_objects(), 1);
    }
}
