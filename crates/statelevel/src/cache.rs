//! The order-preserving data cache (§4.1).
//!
//! "Both the Netnews and the trading solutions outlined above can be
//! generalized to the notion of an order-preserving data cache." Items
//! carry their identity and an optional dependency on another item (the
//! Netnews `References` field; the trading dependency field). The cache
//! presents an item only once its dependency chain is present — and,
//! exactly as the paper specifies for news readers, the user may choose
//! to display out-of-order items anyway.
//!
//! The cost model the paper claims is visible in the API: state is
//! proportional to the items *cached here* (the user's interest set), not
//! to global traffic, and only true semantic dependencies ever delay
//! presentation.

use clocks::versions::ObjectId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A cached item.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Item<T> {
    depends_on: Option<ObjectId>,
    body: T,
    presented: bool,
}

/// The order-preserving cache.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OrderPreservingCache<T> {
    items: BTreeMap<ObjectId, Item<T>>,
    /// Reverse edges: dependency → dependents waiting on it.
    waiters: BTreeMap<ObjectId, BTreeSet<ObjectId>>,
    presented_out_of_order: u64,
}

impl<T> Default for OrderPreservingCache<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> OrderPreservingCache<T> {
    /// An empty cache.
    pub fn new() -> Self {
        OrderPreservingCache {
            items: BTreeMap::new(),
            waiters: BTreeMap::new(),
            presented_out_of_order: 0,
        }
    }

    /// Inserts an item; returns the ids that became presentable because
    /// of it (the item itself and any cascade of dependents), in
    /// presentation order.
    pub fn insert(&mut self, id: ObjectId, depends_on: Option<ObjectId>, body: T) -> Vec<ObjectId> {
        if self.items.contains_key(&id) {
            return Vec::new(); // duplicate
        }
        self.items.insert(
            id,
            Item {
                depends_on,
                body,
                presented: false,
            },
        );
        let mut newly = Vec::new();
        if self.is_presentable(id) {
            self.mark_presented(id, &mut newly);
        } else if let Some(dep) = depends_on {
            self.waiters.entry(dep).or_default().insert(id);
        }
        newly
    }

    /// Whether an item's dependency chain is satisfied and presented.
    fn is_presentable(&self, id: ObjectId) -> bool {
        match self.items.get(&id) {
            None => false,
            Some(item) => match item.depends_on {
                None => true,
                Some(dep) => self.items.get(&dep).map(|d| d.presented).unwrap_or(false),
            },
        }
    }

    fn mark_presented(&mut self, id: ObjectId, out: &mut Vec<ObjectId>) {
        if let Some(item) = self.items.get_mut(&id) {
            if item.presented {
                return;
            }
            item.presented = true;
            out.push(id);
        }
        // Cascade to waiters.
        if let Some(waiters) = self.waiters.remove(&id) {
            for w in waiters {
                if self.is_presentable(w) {
                    self.mark_presented(w, out);
                }
            }
        }
    }

    /// Forces presentation of an item whose dependency is missing — the
    /// news reader's "display out-of-order responses" option.
    pub fn force_present(&mut self, id: ObjectId) -> Vec<ObjectId> {
        let mut out = Vec::new();
        if self.items.contains_key(&id) && !self.items[&id].presented {
            self.presented_out_of_order += 1;
            self.mark_presented(id, &mut out);
        }
        out
    }

    /// Reads an item's body.
    pub fn get(&self, id: ObjectId) -> Option<&T> {
        self.items.get(&id).map(|i| &i.body)
    }

    /// Whether an item has been presented.
    pub fn is_presented(&self, id: ObjectId) -> bool {
        self.items.get(&id).map(|i| i.presented).unwrap_or(false)
    }

    /// Items held back waiting on dependencies.
    pub fn pending(&self) -> Vec<ObjectId> {
        self.items
            .iter()
            .filter(|(_, i)| !i.presented)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Dependencies referenced but not yet cached — "specifically note
    /// which articles were missing".
    pub fn missing_dependencies(&self) -> Vec<ObjectId> {
        self.waiters
            .keys()
            .filter(|dep| !self.items.contains_key(dep))
            .copied()
            .collect()
    }

    /// Total items cached (the paper's state-proportionality claim is
    /// about this number).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Items force-presented out of order so far.
    pub fn presented_out_of_order(&self) -> u64 {
        self.presented_out_of_order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u64) -> ObjectId {
        ObjectId(i)
    }

    #[test]
    fn independent_items_present_immediately() {
        let mut c = OrderPreservingCache::new();
        assert_eq!(c.insert(id(1), None, "inquiry"), vec![id(1)]);
        assert!(c.is_presented(id(1)));
    }

    #[test]
    fn response_waits_for_inquiry() {
        // The Netnews scenario: response arrives before its inquiry.
        let mut c = OrderPreservingCache::new();
        assert!(c.insert(id(2), Some(id(1)), "response").is_empty());
        assert!(!c.is_presented(id(2)));
        assert_eq!(c.missing_dependencies(), vec![id(1)]);
        // Inquiry arrives; both present, inquiry first.
        let newly = c.insert(id(1), None, "inquiry");
        assert_eq!(newly, vec![id(1), id(2)]);
        assert!(c.missing_dependencies().is_empty());
    }

    #[test]
    fn chains_cascade() {
        let mut c = OrderPreservingCache::new();
        assert!(c.insert(id(3), Some(id(2)), "re: re:").is_empty());
        assert!(c.insert(id(2), Some(id(1)), "re:").is_empty());
        let newly = c.insert(id(1), None, "root");
        assert_eq!(newly, vec![id(1), id(2), id(3)]);
    }

    #[test]
    fn force_present_out_of_order() {
        let mut c = OrderPreservingCache::new();
        c.insert(id(2), Some(id(1)), "orphan response");
        let shown = c.force_present(id(2));
        assert_eq!(shown, vec![id(2)]);
        assert_eq!(c.presented_out_of_order(), 1);
        // The late inquiry still presents normally.
        let newly = c.insert(id(1), None, "inquiry");
        assert_eq!(newly, vec![id(1)]);
    }

    #[test]
    fn duplicates_ignored() {
        let mut c = OrderPreservingCache::new();
        c.insert(id(1), None, "a");
        assert!(c.insert(id(1), None, "a-dup").is_empty());
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(id(1)), Some(&"a"));
    }

    #[test]
    fn pending_lists_unpresented() {
        let mut c = OrderPreservingCache::new();
        c.insert(id(5), Some(id(4)), "waiting");
        assert_eq!(c.pending(), vec![id(5)]);
        assert!(!c.is_empty());
    }
}
