//! Prescriptive ordering: delivery order dictated by the data, not the
//! transport.
//!
//! "Many systems use or provide what we call *prescriptive ordering*
//! where message delivery order is effectively based on ordering
//! constraints explicitly specified or prescribed by a process at the
//! time it sends a message" (§2). The inbox below reorders (or drops)
//! per-object updates using the version number carried in each update —
//! the state-level replacement for a causal holdback queue, with the key
//! differences the paper stresses: the constraint is *exactly* the
//! semantic one (no false causality across objects), and stale data can
//! simply be dropped when only the latest value matters (§4.6).

use clocks::versions::{ObjectId, Version};
use simnet::time::SimTime;
use std::collections::{BTreeMap, HashMap};

/// How the inbox treats out-of-order updates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrescriptivePolicy {
    /// Deliver every version in order, holding successors until gaps
    /// fill (a per-object FIFO — e.g. an audit log).
    InOrder,
    /// Deliver only when the update is newer than the last delivered
    /// version; older updates are dropped. This is the monitoring-system
    /// policy of §4.6 ("the communication system giving priority to the
    /// most recent updates, dropping older updates if necessary").
    LatestWins,
}

/// An update released to the application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Released<T> {
    /// Which object.
    pub object: ObjectId,
    /// The version released.
    pub version: Version,
    /// The update body.
    pub body: T,
    /// When the update arrived.
    pub arrived_at: SimTime,
    /// When it was released.
    pub released_at: SimTime,
}

/// Per-object state under [`PrescriptivePolicy::InOrder`].
#[derive(Debug, Default)]
struct ObjectStream<T> {
    delivered: u64,
    held: BTreeMap<u64, (T, SimTime)>,
}

/// A reordering/dropping inbox driven by data-carried versions.
///
/// # Examples
///
/// ```
/// use statelevel::prescriptive::{PrescriptiveInbox, PrescriptivePolicy};
/// use clocks::versions::{ObjectId, Version};
/// use simnet::time::SimTime;
///
/// let mut inbox = PrescriptiveInbox::new(PrescriptivePolicy::LatestWins);
/// let sensor = ObjectId(1);
/// let t = SimTime::ZERO;
/// assert_eq!(inbox.offer(sensor, Version(5), 210, t).len(), 1);
/// // A late, older sample is simply dropped — no holdback, ever.
/// assert!(inbox.offer(sensor, Version(3), 195, t).is_empty());
/// assert_eq!(inbox.delivered_version(sensor), Version(5));
/// ```
#[derive(Debug)]
pub struct PrescriptiveInbox<T> {
    policy: PrescriptivePolicy,
    streams: HashMap<ObjectId, ObjectStream<T>>,
    dropped_stale: u64,
    held_total: u64,
}

impl<T> PrescriptiveInbox<T> {
    /// Creates an inbox with the given policy.
    pub fn new(policy: PrescriptivePolicy) -> Self {
        PrescriptiveInbox {
            policy,
            streams: HashMap::new(),
            dropped_stale: 0,
            held_total: 0,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> PrescriptivePolicy {
        self.policy
    }

    /// Offers an update; returns the updates released by it (possibly
    /// several, when it fills a gap; possibly none, when held or stale).
    pub fn offer(
        &mut self,
        object: ObjectId,
        version: Version,
        body: T,
        now: SimTime,
    ) -> Vec<Released<T>> {
        let stream = self.streams.entry(object).or_insert_with(|| ObjectStream {
            delivered: 0,
            held: BTreeMap::new(),
        });
        match self.policy {
            PrescriptivePolicy::LatestWins => {
                if version.0 <= stream.delivered {
                    self.dropped_stale += 1;
                    Vec::new()
                } else {
                    stream.delivered = version.0;
                    vec![Released {
                        object,
                        version,
                        body,
                        arrived_at: now,
                        released_at: now,
                    }]
                }
            }
            PrescriptivePolicy::InOrder => {
                if version.0 <= stream.delivered || stream.held.contains_key(&version.0) {
                    self.dropped_stale += 1;
                    return Vec::new();
                }
                stream.held.insert(version.0, (body, now));
                let mut released = Vec::new();
                while let Some((body, arrived)) = stream.held.remove(&(stream.delivered + 1)) {
                    stream.delivered += 1;
                    if arrived < now {
                        self.held_total += 1;
                    }
                    released.push(Released {
                        object,
                        version: Version(stream.delivered),
                        body,
                        arrived_at: arrived,
                        released_at: now,
                    });
                }
                released
            }
        }
    }

    /// Versions currently held (waiting for gaps), per object.
    pub fn held_len(&self, object: ObjectId) -> usize {
        self.streams.get(&object).map(|s| s.held.len()).unwrap_or(0)
    }

    /// Known missing versions for `object` (gap contents) — the state the
    /// Netnews database would mark as "article missing".
    pub fn missing(&self, object: ObjectId) -> Vec<Version> {
        let Some(s) = self.streams.get(&object) else {
            return Vec::new();
        };
        let Some((&max_held, _)) = s.held.iter().next_back() else {
            return Vec::new();
        };
        ((s.delivered + 1)..max_held)
            .filter(|v| !s.held.contains_key(v))
            .map(Version)
            .collect()
    }

    /// Stale updates dropped so far.
    pub fn dropped_stale(&self) -> u64 {
        self.dropped_stale
    }

    /// Updates that were held before release.
    pub fn held_before_release(&self) -> u64 {
        self.held_total
    }

    /// The highest delivered version for `object`.
    pub fn delivered_version(&self, object: ObjectId) -> Version {
        Version(self.streams.get(&object).map(|s| s.delivered).unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn obj() -> ObjectId {
        ObjectId(1)
    }

    #[test]
    fn in_order_releases_immediately_when_sequential() {
        let mut inbox = PrescriptiveInbox::new(PrescriptivePolicy::InOrder);
        let r = inbox.offer(obj(), Version(1), "a", t(0));
        assert_eq!(r.len(), 1);
        let r = inbox.offer(obj(), Version(2), "b", t(1));
        assert_eq!(r.len(), 1);
        assert_eq!(inbox.delivered_version(obj()), Version(2));
    }

    #[test]
    fn in_order_holds_gaps_and_releases_in_sequence() {
        let mut inbox = PrescriptiveInbox::new(PrescriptivePolicy::InOrder);
        assert!(inbox.offer(obj(), Version(3), "c", t(0)).is_empty());
        assert!(inbox.offer(obj(), Version(2), "b", t(1)).is_empty());
        assert_eq!(inbox.held_len(obj()), 2);
        assert_eq!(inbox.missing(obj()), vec![Version(1)]);
        let r = inbox.offer(obj(), Version(1), "a", t(2));
        let bodies: Vec<&str> = r.iter().map(|x| x.body).collect();
        assert_eq!(bodies, vec!["a", "b", "c"]);
        assert_eq!(inbox.held_before_release(), 2);
        assert!(inbox.missing(obj()).is_empty());
    }

    #[test]
    fn latest_wins_drops_stale() {
        let mut inbox = PrescriptiveInbox::new(PrescriptivePolicy::LatestWins);
        assert_eq!(inbox.offer(obj(), Version(5), 50, t(0)).len(), 1);
        assert!(inbox.offer(obj(), Version(3), 30, t(1)).is_empty());
        assert_eq!(inbox.dropped_stale(), 1);
        assert_eq!(inbox.delivered_version(obj()), Version(5));
        // A newer one goes straight through — no holdback ever.
        let r = inbox.offer(obj(), Version(9), 90, t(2));
        assert_eq!(r[0].version, Version(9));
        assert_eq!(r[0].released_at, t(2));
    }

    #[test]
    fn objects_are_independent() {
        // No false causality: a gap in object 1 never delays object 2.
        let mut inbox = PrescriptiveInbox::new(PrescriptivePolicy::InOrder);
        assert!(inbox
            .offer(ObjectId(1), Version(2), "held", t(0))
            .is_empty());
        let r = inbox.offer(ObjectId(2), Version(1), "flows", t(1));
        assert_eq!(r.len(), 1, "independent object must not be delayed");
    }

    #[test]
    fn duplicate_versions_dropped() {
        let mut inbox = PrescriptiveInbox::new(PrescriptivePolicy::InOrder);
        inbox.offer(obj(), Version(1), "a", t(0));
        assert!(inbox.offer(obj(), Version(1), "a-dup", t(1)).is_empty());
        assert_eq!(inbox.dropped_stale(), 1);
        assert_eq!(inbox.policy(), PrescriptivePolicy::InOrder);
    }
}
