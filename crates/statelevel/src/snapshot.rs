//! Chandy–Lamport consistent snapshots over plain channels (§4.2).
//!
//! "Even detection problems requiring a full 'consistent cut' can be
//! solved using a periodic consistent snapshot protocol, which can also
//! be implemented efficiently at the state level without CATOCS." This is
//! the classic marker algorithm: FIFO channels, no ordering support
//! beyond that.
//!
//! The engine is a per-process state machine. A snapshot proceeds as:
//!
//! 1. the initiator records its state and sends a marker on every
//!    outgoing channel;
//! 2. on first marker receipt, a process records its state, marks the
//!    incoming channel empty, and relays markers on all outgoing
//!    channels;
//! 3. messages arriving on a channel after the local recording but before
//!    that channel's marker are recorded as channel state;
//! 4. the local snapshot is complete when markers have arrived on every
//!    incoming channel.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The completed local contribution to a snapshot.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalSnapshot<S, M> {
    /// The process's recorded state.
    pub state: S,
    /// Messages recorded in flight on each incoming channel.
    pub channels: BTreeMap<usize, Vec<M>>,
}

/// Per-process Chandy–Lamport engine.
#[derive(Debug)]
pub struct SnapshotEngine<S, M> {
    me: usize,
    n: usize,
    /// Recorded local state (None = not yet participating).
    recorded: Option<S>,
    /// Channels still being recorded (marker not yet received).
    recording: BTreeSet<usize>,
    /// Recorded channel contents.
    channels: BTreeMap<usize, Vec<M>>,
    /// Completed snapshot, if any.
    complete: Option<LocalSnapshot<S, M>>,
}

/// What the caller must send after an engine event: markers to everyone.
#[derive(Debug, PartialEq, Eq)]
pub enum SnapshotAction {
    /// No sends required.
    None,
    /// Send a marker on every outgoing channel (to all other processes).
    SendMarkers,
}

impl<S: Clone, M: Clone> SnapshotEngine<S, M> {
    /// Creates an engine for process `me` of `n`.
    pub fn new(me: usize, n: usize) -> Self {
        SnapshotEngine {
            me,
            n,
            recorded: None,
            recording: BTreeSet::new(),
            channels: BTreeMap::new(),
            complete: None,
        }
    }

    /// Whether this process has recorded its state.
    pub fn is_recording(&self) -> bool {
        self.recorded.is_some() && self.complete.is_none()
    }

    /// The completed local snapshot, if finished.
    pub fn completed(&self) -> Option<&LocalSnapshot<S, M>> {
        self.complete.as_ref()
    }

    /// Initiates a snapshot with the current local `state`.
    pub fn initiate(&mut self, state: S) -> SnapshotAction {
        if self.recorded.is_some() {
            return SnapshotAction::None;
        }
        self.record(state);
        SnapshotAction::SendMarkers
    }

    /// Handles a marker from `from`; `state` is sampled lazily only if
    /// this is the first marker.
    pub fn on_marker(&mut self, from: usize, state: impl FnOnce() -> S) -> SnapshotAction {
        let action = if self.recorded.is_none() {
            self.record(state());
            SnapshotAction::SendMarkers
        } else {
            SnapshotAction::None
        };
        self.recording.remove(&from);
        self.maybe_complete();
        action
    }

    /// Handles an application message from `from` (call for *every*
    /// app message while a snapshot may be active).
    pub fn on_app_message(&mut self, from: usize, msg: &M) {
        if self.recorded.is_some() && self.complete.is_none() && self.recording.contains(&from) {
            self.channels.entry(from).or_default().push(msg.clone());
        }
    }

    fn record(&mut self, state: S) {
        self.recorded = Some(state);
        self.recording = (0..self.n).filter(|&k| k != self.me).collect();
        self.channels.clear();
        self.maybe_complete();
    }

    fn maybe_complete(&mut self) {
        if self.recorded.is_some() && self.recording.is_empty() && self.complete.is_none() {
            self.complete = Some(LocalSnapshot {
                state: self.recorded.clone().expect("recorded"),
                channels: std::mem::take(&mut self.channels),
            });
        }
    }

    /// Resets for the next snapshot round (periodic snapshotting).
    pub fn reset(&mut self) {
        self.recorded = None;
        self.recording.clear();
        self.channels.clear();
        self.complete = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initiator_records_and_sends_markers() {
        let mut e: SnapshotEngine<u32, &str> = SnapshotEngine::new(0, 3);
        assert_eq!(e.initiate(42), SnapshotAction::SendMarkers);
        assert!(e.is_recording());
        assert_eq!(e.initiate(43), SnapshotAction::None, "idempotent");
    }

    #[test]
    fn first_marker_triggers_recording() {
        let mut e: SnapshotEngine<u32, &str> = SnapshotEngine::new(1, 3);
        let a = e.on_marker(0, || 7);
        assert_eq!(a, SnapshotAction::SendMarkers);
        // Second marker completes (channels 0 and 2 both done).
        let a = e.on_marker(2, || 999);
        assert_eq!(a, SnapshotAction::None);
        let snap = e.completed().expect("complete");
        assert_eq!(snap.state, 7);
        assert!(snap.channels.values().all(|v| v.is_empty()));
    }

    #[test]
    fn in_flight_messages_recorded_on_open_channels() {
        let mut e: SnapshotEngine<u32, &str> = SnapshotEngine::new(1, 3);
        e.on_marker(0, || 1); // channel 0 closed, channel 2 recording
        e.on_app_message(2, &"in-flight");
        e.on_app_message(0, &"post-marker"); // channel 0 already closed
        e.on_marker(2, || 0);
        let snap = e.completed().unwrap();
        assert_eq!(snap.channels.get(&2).unwrap(), &vec!["in-flight"]);
        assert!(!snap.channels.contains_key(&0));
    }

    #[test]
    fn messages_before_recording_are_not_channel_state() {
        let mut e: SnapshotEngine<u32, &str> = SnapshotEngine::new(1, 2);
        e.on_app_message(0, &"too-early");
        e.on_marker(0, || 5);
        let snap = e.completed().unwrap();
        assert!(snap.channels.values().all(|v| v.is_empty()));
    }

    #[test]
    fn two_process_cut_is_consistent() {
        // P0 sends 3 messages, initiates after the 2nd; P1 has received
        // 1 when the marker arrives — message 2 is channel state.
        let mut p0: SnapshotEngine<u32, u32> = SnapshotEngine::new(0, 2);
        let mut p1: SnapshotEngine<u32, u32> = SnapshotEngine::new(1, 2);
        // P1 receives message 1.
        p1.on_app_message(0, &1);
        // P0 records having sent 2 messages.
        assert_eq!(p0.initiate(2), SnapshotAction::SendMarkers);
        // Message 2 is in flight: arrives at P1 before the marker.
        // P1 hasn't recorded yet, so it is NOT channel state — it will be
        // reflected in P1's local state instead.
        p1.on_app_message(0, &2);
        let a = p1.on_marker(0, || 2 /* received both */);
        assert_eq!(a, SnapshotAction::SendMarkers);
        let s1 = p1.completed().unwrap().clone();
        p0.on_marker(1, || unreachable!("p0 already recorded"));
        let s0 = p0.completed().unwrap().clone();
        // Consistency: sent (2) == received in state (2) + in channels (0).
        let in_channels: usize = s1.channels.values().map(|v| v.len()).sum();
        assert_eq!(s0.state as usize, s1.state as usize + in_channels);
    }

    #[test]
    fn reset_allows_periodic_snapshots() {
        let mut e: SnapshotEngine<u32, &str> = SnapshotEngine::new(0, 2);
        e.initiate(1);
        e.on_marker(1, || 0);
        assert!(e.completed().is_some());
        e.reset();
        assert!(e.completed().is_none());
        assert_eq!(e.initiate(2), SnapshotAction::SendMarkers);
    }
}
