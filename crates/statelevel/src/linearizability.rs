//! A linearizability checker for register histories (§3.3).
//!
//! The paper names linearizability \[Herlihy & Wing '90\] among the
//! semantic ordering constraints "stronger than or distinct from the
//! ordering constraints imposed by the happens-before relationship" —
//! for which "neither causally nor totally ordered multicast is
//! sufficient". This checker makes that claim testable: given a history
//! of timed register operations (e.g. collected from a replicated store
//! built on cbcast), it decides whether any legal sequential ordering is
//! consistent with the real-time order — the Wing & Gong exhaustive
//! search, fine for the small histories tests produce.

use serde::{Deserialize, Serialize};
use simnet::time::SimTime;

/// A register operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegisterOp<V> {
    /// Write `V`.
    Write(V),
    /// Read observed `V` (None = initial value).
    Read(Option<V>),
}

/// One completed operation in a history.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedOp<V> {
    /// Invocation instant.
    pub invoked: SimTime,
    /// Response instant.
    pub responded: SimTime,
    /// The operation and its outcome.
    pub op: RegisterOp<V>,
}

impl<V> TimedOp<V> {
    /// Builds an operation.
    pub fn new(invoked: SimTime, responded: SimTime, op: RegisterOp<V>) -> Self {
        assert!(invoked <= responded, "response precedes invocation");
        TimedOp {
            invoked,
            responded,
            op,
        }
    }

    /// Whether this op completed strictly before `other` began.
    pub fn precedes(&self, other: &TimedOp<V>) -> bool {
        self.responded < other.invoked
    }
}

/// Checks whether `history` is linearizable as a single register with
/// initial value `None`.
///
/// Exhaustive with pruning: exponential in the worst case — use on the
/// small histories produced by tests, as intended.
pub fn is_linearizable<V: Copy + Eq>(history: &[TimedOp<V>]) -> bool {
    let n = history.len();
    if n == 0 {
        return true;
    }
    let mut used = vec![false; n];
    search(history, &mut used, None, n)
}

fn search<V: Copy + Eq>(
    history: &[TimedOp<V>],
    used: &mut [bool],
    current: Option<V>,
    remaining: usize,
) -> bool {
    if remaining == 0 {
        return true;
    }
    for i in 0..history.len() {
        if used[i] {
            continue;
        }
        // `i` may be linearized next only if no other pending operation
        // completed before `i` was invoked.
        let minimal = (0..history.len())
            .filter(|&j| !used[j] && j != i)
            .all(|j| !history[j].precedes(&history[i]));
        if !minimal {
            continue;
        }
        let next = match history[i].op {
            RegisterOp::Write(v) => Some(Some(v)),
            RegisterOp::Read(v) => (v == current).then_some(current),
        };
        if let Some(state) = next {
            used[i] = true;
            if search(history, used, state, remaining - 1) {
                used[i] = false;
                return true;
            }
            used[i] = false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn w(inv: u64, res: u64, v: i32) -> TimedOp<i32> {
        TimedOp::new(t(inv), t(res), RegisterOp::Write(v))
    }

    fn r(inv: u64, res: u64, v: Option<i32>) -> TimedOp<i32> {
        TimedOp::new(t(inv), t(res), RegisterOp::Read(v))
    }

    #[test]
    fn empty_and_sequential_histories() {
        assert!(is_linearizable::<i32>(&[]));
        assert!(is_linearizable(&[w(0, 1, 5), r(2, 3, Some(5))]));
        assert!(is_linearizable(&[r(0, 1, None), w(2, 3, 5)]));
    }

    #[test]
    fn stale_read_after_write_completes_is_rejected() {
        // Write(5) fully completes; a later read returning the initial
        // value cannot be linearized.
        let h = [w(0, 1, 5), r(2, 3, None)];
        assert!(!is_linearizable(&h));
    }

    #[test]
    fn overlapping_read_may_see_either_side() {
        // Read overlaps the write: both outcomes are linearizable.
        assert!(is_linearizable(&[w(0, 10, 5), r(5, 6, Some(5))]));
        assert!(is_linearizable(&[w(0, 10, 5), r(5, 6, None)]));
    }

    #[test]
    fn new_old_inversion_is_rejected() {
        // Two sequential reads: the first sees the new value, the second
        // sees the old — a classic non-linearizable "new/old inversion".
        let h = [
            w(0, 10, 5),
            r(2, 3, Some(5)), // sees the write...
            r(4, 6, None),    // ...then a later read un-sees it
        ];
        assert!(!is_linearizable(&h));
    }

    #[test]
    fn concurrent_writes_allow_either_order() {
        let h = [
            w(0, 10, 1),
            w(0, 10, 2),
            r(11, 12, Some(1)), // one of the two must be last
        ];
        assert!(is_linearizable(&h));
        let h2 = [w(0, 10, 1), w(0, 10, 2), r(11, 12, Some(2))];
        assert!(is_linearizable(&h2));
        let h3 = [w(0, 10, 1), w(0, 10, 2), r(11, 12, None)];
        assert!(!is_linearizable(&h3));
    }

    #[test]
    fn causal_replication_history_is_not_linearizable() {
        // The shape a cbcast-replicated register produces: replica A
        // writes and responds immediately (asynchronous update); a read
        // at replica B after the write's response still sees the old
        // value (propagation in flight). Linearizability rejects it.
        let h = [
            w(0, 1, 42),         // A's write "completes" locally at 1ms
            r(5, 6, None),       // B reads stale at 5ms
            r(20, 21, Some(42)), // B eventually sees it
        ];
        assert!(!is_linearizable(&h));
    }

    #[test]
    #[should_panic(expected = "response precedes invocation")]
    fn rejects_backwards_ops() {
        let _ = TimedOp::new(t(5), t(1), RegisterOp::Write(1));
    }
}
