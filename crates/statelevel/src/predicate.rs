//! Locally-stable predicate detection without CATOCS (§4.2).
//!
//! The paper's deadlock-detection argument: for 2-phase-locked
//! transactions, "the set is deadlocked if and only if each of the
//! following is independently true at some time during their execution —
//! t1 waits-for t2, ... tn waits-for t1". Wait-for edges can therefore be
//! collected incrementally, in any order, over plain FIFO channels, and a
//! cycle in the accumulated graph is *exactly* a deadlock: no false
//! positives, no ordered multicast needed.
//!
//! [`WaitForGraph`] is the monitor-side structure: nodes are generic so
//! the same graph serves transaction deadlock (nodes = transaction ids)
//! and RPC deadlock (nodes = `(process, rpc-instance)` pairs, the
//! appendix 9.2 formulation that also handles multi-threaded servers).
//! [`TerminationDetector`] covers the other locally-stable example the
//! paper cites (message-counting termination detection on a cut).

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::hash::Hash;

/// A wait-for graph with exact cycle detection.
///
/// # Examples
///
/// ```
/// use statelevel::predicate::WaitForGraph;
///
/// let mut g = WaitForGraph::new();
/// g.add_wait(1, 2); // t1 waits for t2
/// g.add_wait(2, 3);
/// assert!(!g.has_cycle());
/// g.add_wait(3, 1); // closes the loop — a real deadlock
/// let cycle = g.find_cycle().unwrap();
/// assert_eq!(cycle.len(), 3);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WaitForGraph<N: Ord> {
    edges: BTreeMap<N, BTreeSet<N>>,
}

impl<N: Ord + Copy + Hash> Default for WaitForGraph<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N: Ord + Copy + Hash> WaitForGraph<N> {
    /// An empty graph.
    pub fn new() -> Self {
        WaitForGraph {
            edges: BTreeMap::new(),
        }
    }

    /// Adds the edge `a waits-for b`. Returns true if it is new.
    pub fn add_wait(&mut self, a: N, b: N) -> bool {
        self.edges.entry(a).or_default().insert(b)
    }

    /// Removes the edge `a waits-for b` (the wait resolved).
    pub fn remove_wait(&mut self, a: N, b: N) {
        if let Some(s) = self.edges.get_mut(&a) {
            s.remove(&b);
            if s.is_empty() {
                self.edges.remove(&a);
            }
        }
    }

    /// Removes every edge touching `n` (e.g. transaction finished).
    pub fn remove_node(&mut self, n: N) {
        self.edges.remove(&n);
        for s in self.edges.values_mut() {
            s.remove(&n);
        }
        self.edges.retain(|_, s| !s.is_empty());
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(|s| s.len()).sum()
    }

    /// Whether the graph currently contains any cycle.
    pub fn has_cycle(&self) -> bool {
        self.find_cycle().is_some()
    }

    /// Finds one cycle, if any, as the list of nodes along it.
    pub fn find_cycle(&self) -> Option<Vec<N>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: BTreeMap<N, Color> = self
            .edges
            .keys()
            .copied()
            .chain(self.edges.values().flatten().copied())
            .map(|n| (n, Color::White))
            .collect();
        let nodes: Vec<N> = color.keys().copied().collect();
        let mut stack_path: Vec<N> = Vec::new();

        fn dfs<N: Ord + Copy>(
            n: N,
            edges: &BTreeMap<N, BTreeSet<N>>,
            color: &mut BTreeMap<N, Color>,
            path: &mut Vec<N>,
        ) -> Option<Vec<N>> {
            color.insert(n, Color::Gray);
            path.push(n);
            if let Some(succs) = edges.get(&n) {
                for &m in succs {
                    match color.get(&m).copied().unwrap_or(Color::White) {
                        Color::Gray => {
                            // Cycle: slice of path from m to end.
                            let pos = path.iter().position(|&x| x == m).expect("on path");
                            return Some(path[pos..].to_vec());
                        }
                        Color::White => {
                            if let Some(c) = dfs(m, edges, color, path) {
                                return Some(c);
                            }
                        }
                        Color::Black => {}
                    }
                }
            }
            path.pop();
            color.insert(n, Color::Black);
            None
        }

        for n in nodes {
            if color.get(&n).copied() == Some(Color::White) {
                if let Some(c) = dfs(n, &self.edges, &mut color, &mut stack_path) {
                    return Some(c);
                }
                stack_path.clear();
            }
        }
        None
    }

    /// Merges another node's reported local wait-for edges ("each node
    /// multicast its local wait-for graph to all nodes running the
    /// detection algorithm").
    pub fn merge_edges(&mut self, edges: impl IntoIterator<Item = (N, N)>) -> usize {
        let mut added = 0;
        for (a, b) in edges {
            if self.add_wait(a, b) {
                added += 1;
            }
        }
        added
    }
}

/// A k-of-n (OR-model) wait graph: each waiter needs any `k` of its
/// targets to release before it can proceed — the "k-of-n deadlock"
/// class the paper lists among locally-stable detection problems (§4.2).
///
/// Detection is a least fixpoint: non-waiters can finish; a waiter can
/// finish once `k` of its targets are known to finish; waiters never
/// promoted are exactly the deadlocked set (sound and complete for the
/// OR model — optimism here would miss cyclic deadlocks).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KofnWaitGraph<N: Ord> {
    /// waiter → (k, targets).
    waits: BTreeMap<N, (usize, BTreeSet<N>)>,
}

impl<N: Ord + Copy> Default for KofnWaitGraph<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N: Ord + Copy> KofnWaitGraph<N> {
    /// An empty graph.
    pub fn new() -> Self {
        KofnWaitGraph {
            waits: BTreeMap::new(),
        }
    }

    /// Records that `waiter` needs any `k` of `targets`.
    pub fn add_wait(&mut self, waiter: N, k: usize, targets: impl IntoIterator<Item = N>) {
        let set: BTreeSet<N> = targets.into_iter().collect();
        let k = k.min(set.len());
        self.waits.insert(waiter, (k, set));
    }

    /// The wait resolved (the waiter proceeded or gave up).
    pub fn remove_wait(&mut self, waiter: N) {
        self.waits.remove(&waiter);
    }

    /// Returns the set of deadlocked nodes (cannot ever proceed).
    pub fn deadlocked(&self) -> BTreeSet<N> {
        // Least fixpoint: non-waiters can finish; a waiter can finish
        // once at least `k` of its targets are known to finish. Waiters
        // never promoted are deadlocked.
        let mut can_finish: BTreeMap<N, bool> = BTreeMap::new();
        for (&w, (_, targets)) in &self.waits {
            can_finish.insert(w, false);
            for &t in targets {
                can_finish.entry(t).or_insert(true);
            }
        }
        for &w in self.waits.keys() {
            can_finish.insert(w, false);
        }
        loop {
            let mut changed = false;
            for (&w, (k, targets)) in &self.waits {
                if can_finish[&w] {
                    continue;
                }
                let available = targets
                    .iter()
                    .filter(|t| *can_finish.get(t).unwrap_or(&true))
                    .count();
                if available >= *k {
                    can_finish.insert(w, true);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        self.waits
            .keys()
            .filter(|w| !can_finish[w])
            .copied()
            .collect()
    }
}

/// Orphan detection (§4.2): calls whose ancestor computation has died or
/// aborted but which are still running.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OrphanDetector<N: Ord> {
    parent: BTreeMap<N, Option<N>>,
    running: BTreeSet<N>,
    dead: BTreeSet<N>,
}

impl<N: Ord + Copy> OrphanDetector<N> {
    /// An empty detector.
    pub fn new() -> Self {
        OrphanDetector {
            parent: BTreeMap::new(),
            running: BTreeSet::new(),
            dead: BTreeSet::new(),
        }
    }

    /// Records a call: `id` spawned by `parent` (None = root).
    pub fn call_started(&mut self, id: N, parent: Option<N>) {
        self.parent.insert(id, parent);
        self.running.insert(id);
    }

    /// The call completed normally.
    pub fn call_finished(&mut self, id: N) {
        self.running.remove(&id);
    }

    /// The call (or its process) died/aborted.
    pub fn call_died(&mut self, id: N) {
        self.dead.insert(id);
        self.running.remove(&id);
    }

    /// Whether `id` has a dead ancestor.
    fn has_dead_ancestor(&self, id: N) -> bool {
        let mut cur = self.parent.get(&id).copied().flatten();
        while let Some(p) = cur {
            if self.dead.contains(&p) {
                return true;
            }
            cur = self.parent.get(&p).copied().flatten();
        }
        false
    }

    /// Running calls whose ancestry is dead — the orphans to terminate.
    pub fn orphans(&self) -> Vec<N> {
        self.running
            .iter()
            .copied()
            .filter(|&id| self.has_dead_ancestor(id))
            .collect()
    }
}

/// Message-counting termination detection over a consistent cut: the
/// computation has terminated iff every process is passive and the
/// per-channel send and receive counts match.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TerminationDetector {
    /// (active?, sent, received) per process, as sampled on the cut.
    reports: BTreeMap<usize, (bool, u64, u64)>,
    expected: usize,
}

impl TerminationDetector {
    /// Creates a detector expecting reports from `n` processes.
    pub fn new(n: usize) -> Self {
        TerminationDetector {
            reports: BTreeMap::new(),
            expected: n,
        }
    }

    /// Records process `who`'s cut-local report.
    pub fn report(&mut self, who: usize, active: bool, sent: u64, received: u64) {
        self.reports.insert(who, (active, sent, received));
    }

    /// Evaluates the predicate; `None` until all reports are in.
    pub fn terminated(&self) -> Option<bool> {
        if self.reports.len() < self.expected {
            return None;
        }
        let all_passive = self.reports.values().all(|&(a, _, _)| !a);
        let sent: u64 = self.reports.values().map(|&(_, s, _)| s).sum();
        let recv: u64 = self.reports.values().map(|&(_, _, r)| r).sum();
        Some(all_passive && sent == recv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_cycle_in_a_chain() {
        let mut g = WaitForGraph::new();
        g.add_wait(1, 2);
        g.add_wait(2, 3);
        assert!(!g.has_cycle());
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn simple_cycle_detected() {
        let mut g = WaitForGraph::new();
        g.add_wait(1, 2);
        g.add_wait(2, 1);
        let c = g.find_cycle().unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.contains(&1) && c.contains(&2));
    }

    #[test]
    fn long_cycle_detected_exactly() {
        let mut g = WaitForGraph::new();
        for i in 0..5 {
            g.add_wait(i, (i + 1) % 5);
        }
        // A dangling branch should not appear in the cycle.
        g.add_wait(9, 0);
        let c = g.find_cycle().unwrap();
        assert_eq!(c.len(), 5);
        assert!(!c.contains(&9));
    }

    #[test]
    fn resolving_a_wait_clears_deadlock() {
        let mut g = WaitForGraph::new();
        g.add_wait(1, 2);
        g.add_wait(2, 1);
        assert!(g.has_cycle());
        g.remove_wait(2, 1);
        assert!(!g.has_cycle());
    }

    #[test]
    fn remove_node_clears_all_edges() {
        let mut g = WaitForGraph::new();
        g.add_wait(1, 2);
        g.add_wait(3, 2);
        g.add_wait(2, 1);
        g.remove_node(2);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.has_cycle());
    }

    #[test]
    fn merge_edges_counts_new_only() {
        let mut g = WaitForGraph::new();
        assert_eq!(g.merge_edges([(1, 2), (2, 3)]), 2);
        assert_eq!(g.merge_edges([(1, 2), (3, 4)]), 1);
    }

    #[test]
    fn rpc_instance_nodes() {
        // Appendix 9.2: nodes are (process, instance) — a multi-threaded
        // process can appear in several waits without a false deadlock.
        let mut g: WaitForGraph<(usize, u32)> = WaitForGraph::new();
        g.add_wait((0, 15), (1, 37)); // A15 → B37
        g.add_wait((0, 16), (2, 8)); // A16 → C8 (another thread of A)
        g.add_wait((1, 37), (2, 9));
        assert!(!g.has_cycle(), "no false deadlock from sharing process A");
        g.add_wait((2, 9), (0, 15));
        assert!(g.has_cycle());
    }

    #[test]
    fn kofn_simple_or_wait_is_not_deadlocked() {
        // Waiter 1 needs any 1 of {2, 3}; 2 is free → no deadlock.
        let mut g = KofnWaitGraph::new();
        g.add_wait(1, 1, [2, 3]);
        assert!(g.deadlocked().is_empty());
    }

    #[test]
    fn kofn_mutual_full_waits_deadlock() {
        // 1 needs both of {2}, 2 needs both of {1}: classic cycle.
        let mut g = KofnWaitGraph::new();
        g.add_wait(1, 1, [2]);
        g.add_wait(2, 1, [1]);
        let d = g.deadlocked();
        assert!(d.contains(&1) && d.contains(&2));
    }

    #[test]
    fn kofn_or_wait_escapes_partial_cycle() {
        // 1 needs any 1 of {2, 9}; 2 waits on 1. 9 is free, so 1 can
        // proceed and then 2 can — no deadlock despite the 1↔2 cycle.
        let mut g = KofnWaitGraph::new();
        g.add_wait(1, 1, [2, 9]);
        g.add_wait(2, 1, [1]);
        assert!(g.deadlocked().is_empty());
    }

    #[test]
    fn kofn_threshold_two_deadlocks_when_only_cycle_remains() {
        // 1 needs 2 of {2, 3}; 2 waits on 1; 3 waits on 1.
        let mut g = KofnWaitGraph::new();
        g.add_wait(1, 2, [2, 3]);
        g.add_wait(2, 1, [1]);
        g.add_wait(3, 1, [1]);
        let d = g.deadlocked();
        assert_eq!(d.len(), 3, "{d:?}");
        // Removing 3's wait frees 3, but 1 still needs BOTH 2 and 3,
        // and 2 still waits on 1 — the {1, 2} deadlock persists.
        g.remove_wait(3);
        let d = g.deadlocked();
        assert!(d.contains(&1) && d.contains(&2) && !d.contains(&3), "{d:?}");
        // Only when 1's threshold drops to 1-of-2 does the system free.
        g.add_wait(1, 1, [2, 3]);
        assert!(g.deadlocked().is_empty());
    }

    #[test]
    fn orphan_detection_walks_ancestry() {
        let mut o = OrphanDetector::new();
        o.call_started(1, None); // root
        o.call_started(2, Some(1));
        o.call_started(3, Some(2));
        o.call_started(9, None); // unrelated root
        assert!(o.orphans().is_empty());
        // The root dies: its running descendants are orphans.
        o.call_died(1);
        let orphans = o.orphans();
        assert!(orphans.contains(&2) && orphans.contains(&3));
        assert!(!orphans.contains(&9));
        // A finished descendant is not an orphan.
        o.call_finished(2);
        assert_eq!(o.orphans(), vec![3]);
    }

    #[test]
    fn termination_detector_counts() {
        let mut t = TerminationDetector::new(2);
        t.report(0, false, 5, 3);
        assert_eq!(t.terminated(), None);
        t.report(1, false, 1, 3);
        assert_eq!(t.terminated(), Some(true));
        // An in-flight message (sent > received) blocks termination.
        let mut t2 = TerminationDetector::new(2);
        t2.report(0, false, 5, 3);
        t2.report(1, false, 1, 2);
        assert_eq!(t2.terminated(), Some(false));
        // An active process blocks termination.
        let mut t3 = TerminationDetector::new(1);
        t3.report(0, true, 0, 0);
        assert_eq!(t3.terminated(), Some(false));
    }

    proptest! {
        /// Soundness on random graphs: find_cycle returns a real cycle
        /// (every consecutive pair is an edge, and it wraps).
        #[test]
        fn found_cycles_are_real(edges in proptest::collection::vec((0usize..8, 0usize..8), 0..30)) {
            let mut g = WaitForGraph::new();
            for (a, b) in edges {
                if a != b {
                    g.add_wait(a, b);
                }
            }
            if let Some(c) = g.find_cycle() {
                prop_assert!(c.len() >= 2);
                for i in 0..c.len() {
                    let a = c[i];
                    let b = c[(i + 1) % c.len()];
                    prop_assert!(g.edges.get(&a).map(|s| s.contains(&b)).unwrap_or(false),
                        "edge {a}->{b} missing from reported cycle");
                }
            }
        }

        /// Completeness on ring graphs: a known planted cycle is found.
        #[test]
        fn planted_cycles_are_found(n in 2usize..10, extra in proptest::collection::vec((10usize..20, 0usize..20), 0..10)) {
            let mut g = WaitForGraph::new();
            for i in 0..n {
                g.add_wait(i, (i + 1) % n);
            }
            for (a, b) in extra {
                if a != b {
                    g.add_wait(a, b);
                }
            }
            prop_assert!(g.has_cycle());
        }
    }
}
