//! # statelevel — the paper's alternatives to CATOCS
//!
//! "Solve state problems at the state level" (§6). This crate implements
//! every state-level technique the paper puts forward in place of ordered
//! multicast:
//!
//! - [`versioned`] — versioned object stores: per-object version numbers
//!   ("logical clocks on the database state", §3.1) with stale-update
//!   rejection.
//! - [`prescriptive`] — prescriptive ordering: recipients reorder or drop
//!   updates using version numbers carried *in the data*, instead of
//!   relying on communication-level delivery order.
//! - [`causal_memory`] — §3.3: causal memory implemented with
//!   state-level *write* clocks ("much cheaper protocols, which utilize
//!   state-level logical clocks").
//! - [`deps`] — dependency fields for computed data: "each computed data
//!   object records the id and version number of its base data object in
//!   a designated 'dependency' field" (§4.1, the trading-floor fix).
//! - [`linearizability`] — §3.3: a checker for the stronger constraint
//!   no multicast ordering can provide; tests use it to show replicated
//!   registers built on cbcast are not linearizable.
//! - [`cache`] — the order-preserving data cache that generalizes the
//!   Netnews and trading solutions (§4.1).
//! - [`snapshot`] — Chandy–Lamport consistent cuts over plain channels
//!   (no CATOCS), for global predicate evaluation (§4.2).
//! - [`predicate`] — locally-stable predicate detection: wait-for graphs
//!   with exact cycle detection ("no 'false' deadlocks are detected",
//!   §4.2), token-loss and termination detection.

pub mod cache;
pub mod causal_memory;
pub mod deps;
pub mod linearizability;
pub mod predicate;
pub mod prescriptive;
pub mod snapshot;
pub mod versioned;

pub use cache::OrderPreservingCache;
pub use deps::DependencyTracker;
pub use predicate::WaitForGraph;
pub use prescriptive::{PrescriptiveInbox, PrescriptivePolicy};
pub use versioned::VersionedStore;
