//! Causal memory via state-level write clocks (§3.3).
//!
//! The paper lists causal memory \[Ahamad, Hutto, John '91\] as the
//! *weakest* semantic ordering constraint an application may need — and
//! notes that even it "can not be enforced through the use of causal
//! multicast ... much cheaper protocols, which utilize state-level
//! logical clocks, can be used instead."
//!
//! This module is that cheaper protocol: the vector clock here ticks on
//! **writes** (state updates), not on messages. Reads are local and free;
//! acknowledgements, retransmissions and any other communication never
//! advance the clock — the §6 "state clocks tick an order of magnitude
//! slower than communication clocks" point, made concrete.
//!
//! Guarantee: writes that are causally related (through the memory
//! itself: a process writes after reading/applying another write) are
//! applied in causal order at every replica. Concurrent writes to
//! different variables never delay each other beyond their own
//! dependencies; concurrent writes to the *same* variable converge by a
//! deterministic last-writer-wins rule so replicas agree eventually.

use clocks::vector::VectorClock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A shared-memory variable id.
pub type Var = u64;

/// A propagated write.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteMsg<V> {
    /// The writing replica.
    pub writer: usize,
    /// The writer's write-clock at this write (its own component already
    /// incremented — this write is number `vt[writer]` from `writer`).
    pub vt: VectorClock,
    /// The variable written.
    pub var: Var,
    /// The value written.
    pub value: V,
}

/// A stored value with its origin (for last-writer-wins on concurrency).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Slot<V> {
    value: V,
    vt: VectorClock,
    writer: usize,
}

/// One replica of the causal memory.
#[derive(Clone, Debug)]
pub struct CausalMemory<V> {
    me: usize,
    /// Write clock: `vt[k]` = number of writes from replica `k` applied.
    vt: VectorClock,
    store: BTreeMap<Var, Slot<V>>,
    holdback: Vec<WriteMsg<V>>,
    /// Writes applied (local + remote).
    applied: u64,
}

impl<V: Clone> CausalMemory<V> {
    /// Creates replica `me` of `n`.
    pub fn new(me: usize, n: usize) -> Self {
        assert!(me < n, "replica index out of range");
        CausalMemory {
            me,
            vt: VectorClock::new(n),
            store: BTreeMap::new(),
            holdback: Vec::new(),
            applied: 0,
        }
    }

    /// Reads a variable — always local, never blocks, never ticks the
    /// clock.
    pub fn read(&self, var: Var) -> Option<&V> {
        self.store.get(&var).map(|s| &s.value)
    }

    /// Writes a variable; returns the message to disseminate (any
    /// reliable transport, no ordering required).
    pub fn write(&mut self, var: Var, value: V) -> WriteMsg<V> {
        self.vt.tick(self.me);
        let msg = WriteMsg {
            writer: self.me,
            vt: self.vt.clone(),
            var,
            value: value.clone(),
        };
        self.apply(&msg);
        msg
    }

    /// Handles a remote write; applies it (and any unblocked held
    /// writes) as soon as its causal predecessors are in. Returns the
    /// number of writes applied by this call.
    pub fn on_write(&mut self, msg: WriteMsg<V>) -> usize {
        if msg.vt.get(msg.writer) <= self.vt.get(msg.writer) {
            return 0; // duplicate
        }
        self.holdback.push(msg);
        let mut applied = 0;
        loop {
            let idx = self
                .holdback
                .iter()
                .position(|m| self.vt.deliverable(&m.vt, m.writer));
            let Some(idx) = idx else { break };
            let m = self.holdback.swap_remove(idx);
            self.vt.set(m.writer, m.vt.get(m.writer));
            self.apply(&m);
            applied += 1;
        }
        applied
    }

    fn apply(&mut self, msg: &WriteMsg<V>) {
        self.applied += 1;
        let install = match self.store.get(&msg.var) {
            None => true,
            Some(slot) => {
                use clocks::vector::ClockOrd;
                match slot.vt.compare(&msg.vt) {
                    ClockOrd::Before => true, // causally newer write wins
                    ClockOrd::After | ClockOrd::Equal => false,
                    ClockOrd::Concurrent => {
                        // Deterministic last-writer-wins for concurrent
                        // writes: higher (sum, writer) wins, so all
                        // replicas converge to the same value.
                        (msg.vt.total_events(), msg.writer) > (slot.vt.total_events(), slot.writer)
                    }
                }
            }
        };
        if install {
            self.store.insert(
                msg.var,
                Slot {
                    value: msg.value.clone(),
                    vt: msg.vt.clone(),
                    writer: msg.writer,
                },
            );
        }
    }

    /// This replica's write clock.
    pub fn clock(&self) -> &VectorClock {
        &self.vt
    }

    /// Remote writes held waiting for causal predecessors.
    pub fn held(&self) -> usize {
        self.holdback.len()
    }

    /// Total writes applied here.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// The full store contents (testing convergence).
    pub fn snapshot(&self) -> BTreeMap<Var, V> {
        self.store
            .iter()
            .map(|(&k, s)| (k, s.value.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reads_are_local_and_clock_free() {
        let mut m: CausalMemory<i32> = CausalMemory::new(0, 2);
        m.write(1, 10);
        let before = m.clock().clone();
        assert_eq!(m.read(1), Some(&10));
        assert_eq!(m.read(99), None);
        assert_eq!(m.clock(), &before, "reads never tick the clock");
    }

    #[test]
    fn causally_ordered_writes_apply_in_order() {
        let mut a: CausalMemory<&str> = CausalMemory::new(0, 3);
        let mut b: CausalMemory<&str> = CausalMemory::new(1, 3);
        let mut c: CausalMemory<&str> = CausalMemory::new(2, 3);
        let w1 = a.write(1, "first");
        b.on_write(w1.clone());
        assert_eq!(b.read(1), Some(&"first"));
        // b's write causally follows w1 (b applied it before writing).
        let w2 = b.write(1, "second");
        // c receives w2 first: held until w1 arrives.
        assert_eq!(c.on_write(w2.clone()), 0);
        assert_eq!(c.held(), 1);
        assert_eq!(c.read(1), None);
        assert_eq!(c.on_write(w1), 2);
        assert_eq!(c.read(1), Some(&"second"), "never regresses to 'first'");
    }

    #[test]
    fn independent_variables_never_wait() {
        let mut a: CausalMemory<i32> = CausalMemory::new(0, 3);
        let mut b: CausalMemory<i32> = CausalMemory::new(1, 3);
        let mut c: CausalMemory<i32> = CausalMemory::new(2, 3);
        let wa = a.write(1, 10);
        let wb = b.write(2, 20);
        // c gets them in either order — both independent, both apply.
        assert_eq!(c.on_write(wb), 1);
        assert_eq!(c.on_write(wa), 1);
        assert_eq!(c.read(1), Some(&10));
        assert_eq!(c.read(2), Some(&20));
    }

    #[test]
    fn concurrent_writes_converge_deterministically() {
        let mut a: CausalMemory<&str> = CausalMemory::new(0, 2);
        let mut b: CausalMemory<&str> = CausalMemory::new(1, 2);
        let wa = a.write(1, "from a");
        let wb = b.write(1, "from b");
        a.on_write(wb.clone());
        b.on_write(wa.clone());
        assert_eq!(a.read(1), b.read(1), "replicas converge");
    }

    #[test]
    fn duplicates_ignored() {
        let mut a: CausalMemory<i32> = CausalMemory::new(0, 2);
        let mut b: CausalMemory<i32> = CausalMemory::new(1, 2);
        let w = a.write(1, 5);
        assert_eq!(b.on_write(w.clone()), 1);
        assert_eq!(b.on_write(w), 0);
        assert_eq!(b.applied(), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Convergence: replicas that exchange all writes (in any order)
        /// end with identical stores.
        #[test]
        fn convergence_under_any_interleaving(
            writes in proptest::collection::vec((0usize..3, 0u64..4, 0i32..100), 1..20),
            shuffle in proptest::collection::vec(0usize..1000, 0..20),
        ) {
            let n = 3;
            let mut mems: Vec<CausalMemory<i32>> =
                (0..n).map(|i| CausalMemory::new(i, n)).collect();
            // Issue writes locally, collecting the messages.
            let mut msgs = Vec::new();
            for (who, var, val) in writes {
                msgs.push(mems[who].write(var, val));
            }
            // Deliver all messages to all other replicas in a permuted
            // order (per replica).
            for (i, mem) in mems.iter_mut().enumerate().take(n) {
                let mut order: Vec<usize> = (0..msgs.len()).collect();
                for (j, &s) in shuffle.iter().enumerate() {
                    if !order.is_empty() {
                        let a = j % order.len();
                        let b = s % order.len();
                        order.swap(a, b);
                    }
                }
                // Repeat delivery rounds so held writes eventually apply.
                for _round in 0..msgs.len() + 1 {
                    for &k in &order {
                        if msgs[k].writer != i {
                            mem.on_write(msgs[k].clone());
                        }
                    }
                }
            }
            let reference = mems[0].snapshot();
            for m in &mems[1..] {
                prop_assert_eq!(&m.snapshot(), &reference, "divergent replicas");
            }
            for m in &mems {
                prop_assert_eq!(m.held(), 0, "no writes stuck in holdback");
            }
        }
    }
}
