//! The whole state-level stack, end to end — §4.3 live.
//!
//! ```text
//! cargo run --example bank_transfer
//! ```
//!
//! Several clients run two-key transactions (think transfers between
//! accounts on different shards) with randomized lock acquisition order —
//! a recipe for distributed deadlock. Strict 2PL orders the transactions,
//! 2PC commits them atomically, the wait-for monitor breaks the
//! deadlocks, victims retry. No causal or total multicast anywhere; the
//! outcome is verified serializable.

use txn::scenario::run_txn_scenario;

fn main() {
    println!("2PL + MVCC + 2PC + wait-for deadlock monitor, over plain");
    println!("unordered datagrams. Random lock order invites deadlock.\n");
    for (label, shards, clients, keys) in [
        ("low contention ", 3usize, 3usize, 8u64),
        ("mid contention ", 3, 6, 4),
        ("high contention", 2, 8, 2),
    ] {
        let r = run_txn_scenario(2026, shards, clients, keys, 6);
        println!("{label} ({shards} shards, {clients} clients, {keys} keys/shard):");
        println!(
            "  committed {:3}   deadlock aborts {:2} (resolved {:2})   \
             messages {:5}   serializable: {}   complete: {}",
            r.committed,
            r.deadlock_aborts,
            r.deadlocks_resolved,
            r.msgs,
            if r.serializable { "yes" } else { "NO" },
            if r.all_done { "yes" } else { "NO" },
        );
    }
    println!("\n\"A distributed transaction management protocol already orders");
    println!("the transactions ... The relative message ordering from");
    println!("concurrent, but separate, transactions is irrelevant with");
    println!("regards to correctness.\" (§4.3)");
}
