//! The same cbcast endpoints, on a real transport.
//!
//! ```text
//! cargo run --example live_threads
//! ```
//!
//! Every protocol in this repository is a pure state machine, so it runs
//! unchanged outside the simulator. Here four OS threads host
//! `CbcastEndpoint`s; crossbeam channels are the links; a chaos router
//! delays every message by a random amount on its own thread (so the
//! "network" reorders aggressively). Each payload carries the sender's
//! delivered clock at send time, and every receiver checks the causal
//! guarantee live.

use catocs::cbcast::CbcastEndpoint;
use catocs::group::GroupConfig;
use catocs::wire::{Dest, Out, Wire};
use clocks::vector::VectorClock;
use crossbeam::channel::{unbounded, Receiver, Sender};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use simnet::time::SimTime;
use std::sync::Arc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

const N: usize = 4;
const MSGS_PER_MEMBER: u64 = 25;

#[derive(Clone, Debug)]
struct Payload {
    /// Human-readable tag (shows up in Debug output / traces).
    #[allow(dead_code)]
    text: String,
    vt_at_send: VectorClock,
}

type Net = Vec<Sender<Wire<Payload>>>;

fn now_since(start: Instant) -> SimTime {
    SimTime::from_micros(start.elapsed().as_micros() as u64)
}

/// Sends `wire` to `to` after a random delay, on a throwaway thread —
/// maximal reordering.
fn chaos_send(net: &Net, to: usize, wire: Wire<Payload>, rng: &mut SmallRng) {
    let tx = net[to].clone();
    let delay = Duration::from_micros(rng.gen_range(50..5_000));
    std::thread::spawn(move || {
        std::thread::sleep(delay);
        let _ = tx.send(wire);
    });
}

fn route(net: &Net, me: usize, out: Vec<Out<Payload>>, rng: &mut SmallRng) {
    for (dest, wire) in out {
        match dest {
            Dest::All => {
                for k in 0..N {
                    if k != me {
                        chaos_send(net, k, wire.clone(), rng);
                    }
                }
            }
            Dest::One(k) => chaos_send(net, k, wire, rng),
        }
    }
}

fn member(
    me: usize,
    net: Net,
    rx: Receiver<Wire<Payload>>,
    start: Instant,
    violations: Arc<Mutex<u64>>,
) -> (u64, u64) {
    let mut rng = SmallRng::seed_from_u64(me as u64 + 1);
    let mut ep: CbcastEndpoint<Payload> = CbcastEndpoint::new(me, N, GroupConfig::default());
    let mut delivered_clock = VectorClock::new(N);
    let mut sent = 0u64;
    let mut delivered = 0u64;
    let mut held = 0u64;
    let deadline = Instant::now() + Duration::from_secs(4);
    let mut next_send = Instant::now();

    while Instant::now() < deadline {
        // Periodic sends.
        if sent < MSGS_PER_MEMBER && Instant::now() >= next_send {
            sent += 1;
            let mut vt = delivered_clock.clone();
            vt.tick(me);
            let (_self_delivery, out) = ep.multicast(
                now_since(start),
                Payload {
                    text: format!("m{me}.{sent}"),
                    vt_at_send: vt,
                },
            );
            delivered += 1; // cbcast self-delivery is immediate
            delivered_clock.tick(me);
            route(&net, me, out, &mut rng);
            next_send = Instant::now() + Duration::from_millis(20);
        }
        // Receive with a small timeout, then tick the protocol.
        match rx.recv_timeout(Duration::from_millis(5)) {
            Ok(wire) => {
                let (dels, out) = ep.on_wire(now_since(start), wire);
                route(&net, me, out, &mut rng);
                for d in dels {
                    // Live causal check: everything the sender had
                    // delivered must be delivered here already.
                    for k in 0..N {
                        let needed = if k == d.id.sender {
                            d.payload.vt_at_send.get(k).saturating_sub(1)
                        } else {
                            d.payload.vt_at_send.get(k)
                        };
                        if delivered_clock.get(k) < needed {
                            *violations.lock().unwrap() += 1;
                        }
                    }
                    let seen = delivered_clock.get(d.id.sender);
                    delivered_clock.set(d.id.sender, seen.max(d.id.seq));
                    delivered += 1;
                    if d.was_held() {
                        held += 1;
                    }
                }
            }
            Err(_) => {
                let out = ep.on_tick(now_since(start));
                route(&net, me, out, &mut rng);
            }
        }
    }
    (delivered, held)
}

fn main() {
    let start = Instant::now();
    let mut senders = Vec::new();
    let mut receivers = Vec::new();
    for _ in 0..N {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let violations = Arc::new(Mutex::new(0u64));

    println!(
        "{N} OS threads, crossbeam links, 50us–5ms random per-message delay, \
         {MSGS_PER_MEMBER} multicasts each...\n"
    );
    let handles: Vec<_> = receivers
        .into_iter()
        .enumerate()
        .map(|(me, rx)| {
            let net = senders.clone();
            let v = violations.clone();
            std::thread::spawn(move || member(me, net, rx, start, v))
        })
        .collect();

    let expected = (N as u64) * MSGS_PER_MEMBER;
    let mut all_ok = true;
    for (me, h) in handles.into_iter().enumerate() {
        let (delivered, held) = h.join().expect("member thread");
        // Each member delivers its own sends plus everyone else's.
        println!(
            "member {me}: delivered {delivered}/{expected} \
             ({held} held back for causality)"
        );
        if delivered != expected {
            all_ok = false;
        }
    }
    let v = *violations.lock().unwrap();
    println!("\ncausal violations observed: {v}");
    assert_eq!(v, 0, "happens-before must hold on the live transport too");
    if all_ok {
        println!("every member delivered every message, in causal order — same");
        println!("state machines, real threads, real reordering.");
    } else {
        println!("note: a slow machine may cut delivery short of the 4s window;");
        println!("causal SAFETY held regardless.");
    }
}
