//! The Figure-2 shop floor, live.
//!
//! ```text
//! cargo run --example shop_floor
//! ```
//!
//! Client A starts and then stops a manufacturing lot through two
//! shop-floor-control instances sharing a database (the hidden channel).
//! Sweeps seeds and reports how often the remote observer saw the
//! updates out of order, and what each observer strategy concluded.

use apps::shopfloor::run_shopfloor;
use simnet::net::{LatencyModel, NetConfig};
use simnet::time::SimDuration;
use simnet::topology::Topology;

fn net() -> NetConfig {
    const W: f64 = 30.0;
    let dist = vec![
        vec![0.0, W, 1.0, 1.0, W],
        vec![W, 0.0, 1.0, 1.0, W],
        vec![1.0, 1.0, 0.0, 1.0, W],
        vec![1.0, 1.0, 1.0, 0.0, W],
        vec![W, W, W, W, 0.0],
    ];
    NetConfig {
        latency: LatencyModel::Spatial {
            per_unit: SimDuration::from_micros(400),
            jitter: SimDuration::from_micros(300),
        },
        topology: Topology::explicit(dist),
        ..NetConfig::default()
    }
}

fn main() {
    println!("Figure 2: the database orders Start before Stop, but that");
    println!("ordering is invisible to the multicast layer.\n");
    let mut misordered = 0;
    let mut naive_wrong = 0;
    let mut versioned_wrong = 0;
    const RUNS: u64 = 100;
    for seed in 0..RUNS {
        let r = run_shopfloor(seed, net());
        if r.misordered {
            misordered += 1;
            if seed < 5 {
                println!(
                    "seed {seed}: observer delivered STOP before START → naive \
                     state = {:?}, versioned state = {:?}",
                    r.naive_final_stopped
                        .map(|s| if s { "stopped" } else { "running!" }),
                    r.versioned_final_stopped
                        .map(|s| if s { "stopped" } else { "running!" }),
                );
            }
        }
        if r.naive_final_stopped != Some(true) {
            naive_wrong += 1;
        }
        if r.versioned_final_stopped != Some(true) {
            versioned_wrong += 1;
        }
    }
    println!("\nover {RUNS} runs:");
    println!("  misordered deliveries at the observer : {misordered}");
    println!("  naive (delivery-order) state wrong     : {naive_wrong}");
    println!("  version-checked state wrong            : {versioned_wrong}");
    println!("\nThe lot-status version numbers — \"logical clocks on the");
    println!("database state\" — make delivery order irrelevant (§3.1).");
}
