//! The Figure-4 trading floor, live.
//!
//! ```text
//! cargo run --example trading_floor
//! ```
//!
//! Runs the option/theoretical pricing scenario three ways — causal
//! multicast, totally ordered multicast, and the paper's state-level
//! dependency-field fix — and prints the false-crossing counts.

use apps::trading::run_trading;
use catocs::endpoint::Discipline;
use simnet::net::{LatencyModel, NetConfig};
use simnet::time::SimDuration;

fn net() -> NetConfig {
    NetConfig {
        latency: LatencyModel::Uniform {
            min: SimDuration::from_micros(200),
            max: SimDuration::from_millis(8),
        },
        ..NetConfig::default()
    }
}

fn main() {
    println!("Figure 4: a theoretical price must order after the option");
    println!("price it derives from and before the next option price.");
    println!("That constraint is invisible to happens-before.\n");

    let configs = [
        ("causal multicast, naive monitor", Discipline::Causal, false),
        (
            "total order,      naive monitor",
            Discipline::Total { sequencer: 0 },
            false,
        ),
        ("plain FIFO,  dependency fields", Discipline::Fifo, true),
        ("causal,      dependency fields", Discipline::Causal, true),
    ];

    for (label, d, state_level) in configs {
        let mut crossings = 0;
        let mut suppressed = 0;
        let mut displayed = 0;
        for seed in 0..10 {
            let r = run_trading(
                seed,
                d,
                state_level,
                150,
                SimDuration::from_millis(4),
                SimDuration::from_millis(3),
                net(),
            );
            crossings += r.false_crossings;
            suppressed += r.suppressed_stale;
            displayed += r.displayed;
        }
        println!(
            "{label}:  false crossings = {crossings:3}   \
             stale suppressed = {suppressed:3}   displayed = {displayed}"
        );
    }

    println!("\nAs the paper argues (§4.1): no ordering discipline prevents");
    println!("the crossing — only the state-level dependency field does.");
}
