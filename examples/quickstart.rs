//! Quickstart: a causal multicast group in a simulated network.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Three processes chat over `cbcast` on a jittery, reordering network;
//! the example prints the event diagram (the paper's Figure-1 style) and
//! shows that every delivery respected happens-before even though the
//! wire reordered packets.

use catocs::endpoint::Discipline;
use catocs::group::GroupConfig;
use catocs::harness::{spawn_group, GroupApp, GroupCtx, GroupNode};
use catocs::wire::{Delivery, Wire};
use simnet::net::NetConfig;
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};

/// Every member sends a greeting, then replies once to the first
/// greeting it hears from someone else.
struct Greeter {
    sent_hello: bool,
    replied: bool,
    log: Vec<String>,
}

impl GroupApp<String> for Greeter {
    fn on_tick(&mut self, ctx: &mut GroupCtx<'_>) -> Vec<String> {
        if !self.sent_hello {
            self.sent_hello = true;
            vec![format!("hello from member {}", ctx.me)]
        } else {
            Vec::new()
        }
    }

    fn on_deliver(&mut self, ctx: &mut GroupCtx<'_>, d: &Delivery<String>) -> Vec<String> {
        self.log.push(format!(
            "[{}] member {} delivered {:?} from member {}{}",
            d.delivered_at,
            ctx.me,
            d.payload,
            d.id.sender,
            if d.was_held() {
                format!(" (held {} for causality)", d.hold_time())
            } else {
                String::new()
            }
        ));
        if !self.replied && d.id.sender != ctx.me && d.payload.starts_with("hello") {
            self.replied = true;
            return vec![format!("member {} replies to {}", ctx.me, d.id)];
        }
        Vec::new()
    }
}

fn main() {
    // A lossy LAN that reorders packets — cbcast has to work for a living.
    let mut sim = SimBuilder::new(2026)
        .net(NetConfig::lossy_lan(0.05))
        .trace()
        .build::<Wire<String>>();

    let members = spawn_group(
        &mut sim,
        3,
        Discipline::Causal,
        GroupConfig::default(),
        Some(SimDuration::from_millis(5)),
        |_| Greeter {
            sent_hello: false,
            replied: false,
            log: Vec::new(),
        },
    );

    sim.run_until(SimTime::from_secs(2));

    println!("== per-member delivery logs ==");
    for &m in &members {
        let node = sim
            .process::<GroupNode<String, Greeter>>(m)
            .expect("node exists");
        for line in &node.app().log {
            println!("{line}");
        }
        let s = node.stats();
        println!(
            "   member stats: delivered={} held={} mean_hold={}",
            s.delivered,
            s.delivered_after_hold,
            s.mean_hold()
        );
    }

    println!("\n== verification ==");
    for &m in &members {
        let node = sim.process::<GroupNode<String, Greeter>>(m).unwrap();
        // A reply causally follows the hello it answers: check order.
        let log = &node.app().log;
        for (i, line) in log.iter().enumerate() {
            if line.contains("replies to") {
                let answered_hello = log[..i].iter().any(|l| l.contains("\"hello"));
                assert!(answered_hello, "reply delivered before any hello!");
            }
        }
    }
    println!("causal order verified at every member.");
    println!(
        "\nnetwork: sent={} delivered={} dropped={}",
        sim.metrics().counter("net.sent"),
        sim.metrics().counter("net.delivered"),
        sim.metrics().counter("net.dropped"),
    );
}
