//! RPC deadlock detection — appendix 9.2, live.
//!
//! ```text
//! cargo run --example deadlock_detective
//! ```
//!
//! Plants a call cycle (server 0 → server 1 → back into server 0) among
//! background RPC chains and runs both detectors: van Renesse's
//! causal-multicast-everything design and the paper's periodic wait-for
//! reports.

use apps::rpc::{deadlock_scripts, run_state_detector, run_van_renesse};
use simnet::net::NetConfig;
use simnet::time::SimDuration;

fn main() {
    println!("Workload: server 0 calls server 1, which calls back into the");
    println!("now-blocked server 0 — a classic RPC deadlock — plus background");
    println!("chains on the other servers.\n");
    for servers in [4usize, 8, 12] {
        let scripts = deadlock_scripts(servers, servers);
        let vr = run_van_renesse(1, servers, scripts.clone(), NetConfig::lossy_lan(0.0));
        let st = run_state_detector(
            1,
            servers,
            scripts,
            SimDuration::from_millis(50),
            NetConfig::lossy_lan(0.0),
        );
        println!("{servers} servers:");
        println!(
            "  van Renesse (cbcast every RPC event): detected at {:?}, {} messages",
            vr.detected_at, vr.net_sent
        );
        println!(
            "  state-level (periodic wait-for reports): detected at {:?}, {} messages",
            st.detected_at, st.net_sent
        );
        let ratio = vr.net_sent as f64 / st.net_sent.max(1) as f64;
        println!("  message ratio: {ratio:.1}x\n");
    }
    println!("Both find the deadlock; only one multicasts every invocation to");
    println!("the whole group. \"The performance penalty of this algorithm");
    println!("appears prohibitive, especially for detection of a relatively");
    println!("infrequent event like deadlock.\" (appendix 9.2)");
}
