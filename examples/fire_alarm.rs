//! The Figure-3 fire alarm, live.
//!
//! ```text
//! cargo run --example fire_alarm
//! ```
//!
//! A furnace controller multicasts "fire" twice; a monitor multicasts
//! "fire out" in between. The fire itself is the hidden channel. The
//! observer's last-delivered belief is sometimes wrong under causal AND
//! total order; the real-time-timestamp belief never is.

use apps::firemon::run_firemon;
use catocs::endpoint::Discipline;
use simnet::net::{LatencyModel, NetConfig};
use simnet::time::SimDuration;

fn net() -> NetConfig {
    NetConfig {
        latency: LatencyModel::Uniform {
            min: SimDuration::from_micros(100),
            max: SimDuration::from_millis(18),
        },
        ..NetConfig::default()
    }
}

fn main() {
    println!("Figure 3: fire #1, fire out, fire #2 — the physical fire is");
    println!("an external channel no multicast layer can see.\n");
    for (label, d) in [
        ("causal multicast", Discipline::Causal),
        ("total order     ", Discipline::Total { sequencer: 0 }),
    ] {
        let mut wrong_naive = 0;
        let mut wrong_rt = 0;
        let mut anomalies = 0;
        const RUNS: u64 = 100;
        for seed in 0..RUNS {
            let r = run_firemon(seed, d, net(), 300);
            if r.out_delivered_last {
                anomalies += 1;
            }
            if r.naive_fire != Some(true) {
                wrong_naive += 1;
            }
            if r.rt_fire != Some(true) {
                wrong_rt += 1;
            }
        }
        println!(
            "{label}: \"fire out\" arrived last in {anomalies}/{RUNS} runs; \
             last-message belief wrong {wrong_naive}x; \
             timestamp belief wrong {wrong_rt}x"
        );
    }
    println!("\nGround truth: the fire is burning. With ±300us clock skew and");
    println!("5ms event spacing, temporal precedence (§4.6) is exact while");
    println!("delivery order is not — CATOCS \"can't say for sure\".");
}
