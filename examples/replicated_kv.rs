//! Replicated data three ways — the §4.3/§4.4 comparison, live.
//!
//! ```text
//! cargo run --example replicated_kv
//! ```
//!
//! Writes a stream of updates to 5 replicas using (a) cbcast with
//! write-safety levels, (b) 2PC transactions, (c) read-any /
//! write-all-available — then injects the §2 failure (primary partitioned
//! and crashed mid-write) to show where updates are lost.

use bench::experiments::t8;

fn main() {
    println!("Healthy runs (5 replicas, 25 writes, 2% message loss)\n");
    for k in [0usize, 2, 5] {
        let r = t8::run_cbcast_path(7, k, None);
        println!(
            "cbcast k={k}: mean time-to-safety {:.2} ms, safe {}, stalled {}, lost {}",
            r.mean_safety_ms, r.safe, r.stalled, r.lost
        );
    }
    let r = t8::run_twopc_path(7, None);
    println!(
        "2PC        : mean commit {:.2} ms, decided {}, aborted {}, divergent {}",
        r.mean_commit_ms, r.decided, r.aborted, r.lost
    );
    let r = t8::run_waa_path(7, false);
    println!(
        "write-all  : mean commit {:.2} ms, committed {}, aborted {}",
        r.mean_commit_ms, r.committed, r.aborted
    );

    println!("\nNow the failure the paper highlights (§2): the writer is");
    println!("partitioned away right after issuing a write, then crashes.\n");
    let r = t8::run_cbcast_path(7, 0, Some(8));
    println!(
        "cbcast k=0 + crash: lost (applied at primary, missing at replicas) = {}",
        r.lost
    );
    let r = t8::run_twopc_path(7, Some(8));
    println!(
        "2PC + crash       : divergent keys = {} (in-doubt resolved by peers)",
        r.lost
    );
    let r = t8::run_waa_path(7, true);
    println!(
        "write-all + crash : committed {} aborted {} (availability list shrinks)",
        r.committed, r.aborted
    );

    println!("\n\"Message delivery is atomic, but not durable\" — the k=0 write");
    println!("was acknowledged nowhere, survived nowhere. The transactional");
    println!("paths either commit durably or abort cleanly (\"say together\").");
}
