//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace uses: the
//! [`proptest!`] macro, integer/float range strategies, tuple
//! strategies, [`Just`], [`collection::vec`], `prop_map`,
//! `prop_perturb`, `prop_shuffle`, `bool::ANY`, and the
//! `prop_assert*` / `prop_assume!` macros. Inputs are generated from a
//! deterministic per-test seed, so failures reproduce exactly; there is
//! no shrinking — a failing case panics with its generated inputs left
//! to the assertion message.

use rand::rngs::SmallRng;
pub use rand::{Rng, RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (only `cases` is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values (proptest's `Strategy`, minus shrinking).
pub trait Strategy: Sized {
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Feeds generated values plus a fresh RNG through `f`.
    fn prop_perturb<O, F: Fn(Self::Value, SmallRng) -> O>(self, f: F) -> Perturb<Self, F> {
        Perturb { inner: self, f }
    }

    /// Randomly permutes generated vectors.
    fn prop_shuffle(self) -> Shuffle<Self> {
        Shuffle { inner: self }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_perturb`].
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value, SmallRng) -> O> Strategy for Perturb<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut SmallRng) -> O {
        let v = self.inner.sample(rng);
        let fork = SmallRng::seed_from_u64(rng.next_u64());
        (self.f)(v, fork)
    }
}

/// See [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    inner: S,
}

impl<S, T> Strategy for Shuffle<S>
where
    S: Strategy<Value = Vec<T>>,
{
    type Value = Vec<T>;
    fn sample(&self, rng: &mut SmallRng) -> Vec<T> {
        let mut v = self.inner.sample(rng);
        for i in (1..v.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            v.swap(i, j);
        }
        v
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

pub mod collection {
    use super::{SmallRng, Strategy};
    use std::ops::Range;

    /// Acceptable sizes for [`vec`]: a fixed length or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A strategy producing vectors of `elem`-generated values with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        assert!(size.lo < size.hi, "empty size range in collection::vec");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod bool {
    use super::{SmallRng, Strategy};

    /// Strategy type behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut SmallRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Rng, RngCore, SeedableRng, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// The property-test macro: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                // Stable per-test seed: derived from the test's name so
                // each property explores its own sequence but reruns are
                // identical.
                let __seed = {
                    let mut h = 0xcbf29ce484222325u64;
                    for b in concat!(module_path!(), "::", stringify!($name)).bytes() {
                        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
                    }
                    h
                };
                for __case in 0..__cfg.cases as u64 {
                    let mut __rng =
                        <$crate::__SmallRng as $crate::SeedableRng>::seed_from_u64(
                            __seed ^ (__case.wrapping_mul(0x9E3779B97F4A7C15)),
                        );
                    $(
                        #[allow(unused_mut)]
                        let $arg = $crate::Strategy::sample(&($strat), &mut __rng);
                    )+
                    // The body runs inside a zero-arg closure so
                    // `prop_assume!` can skip the case via `return`.
                    #[allow(clippy::redundant_closure_call)]
                    (move || $body)();
                }
            }
        )*
    };
}

#[doc(hidden)]
pub use rand::rngs::SmallRng as __SmallRng;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in 0u64..10, y in -3i64..=3) {
            prop_assert!(x < 10);
            prop_assert!((-3..=3).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in collection::vec(0u8..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_and_map(p in (0u32..4, 1u32..5).prop_map(|(a, b)| a + b)) {
            prop_assert!((1..9).contains(&p));
        }

        #[test]
        fn shuffle_permutes(mut v in Just((0u64..8).collect::<Vec<_>>()).prop_shuffle()) {
            v.sort_unstable();
            prop_assert_eq!(v, (0u64..8).collect::<Vec<_>>());
        }

        #[test]
        fn assume_skips(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }
}
