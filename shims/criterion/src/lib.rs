//! Offline stand-in for `criterion`.
//!
//! Implements the small slice of criterion's API the benches use
//! (`benchmark_group` / `bench_with_input` / `bench_function` /
//! `Bencher::iter` / `black_box` and the `criterion_group!` /
//! `criterion_main!` macros) with a plain wall-clock measurement: a
//! short warm-up, then timed batches until a sampling target is
//! reached, reporting the best observed ns/iter (the most
//! noise-resistant point estimate). No statistics, plots, or baseline
//! storage — enough to compare hot paths by eye and to keep
//! `cargo bench` compiling and running offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(30);
const MEASURE: Duration = Duration::from_millis(150);

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// Runs closures repeatedly and records the best per-iteration time.
pub struct Bencher {
    best_ns: f64,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            best_ns: f64::INFINITY,
            iters: 0,
        }
    }

    /// Measures `f`, called in timed batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate a batch size targeting ~1ms per batch.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = WARMUP.as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((0.001 / per_iter) as u64).clamp(1, 1 << 24);

        let run_start = Instant::now();
        while run_start.elapsed() < MEASURE {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            if ns < self.best_ns {
                self.best_ns = ns;
            }
            self.iters += batch;
        }
    }
}

fn report(group: &str, id: &str, b: &Bencher) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.iters == 0 {
        println!("{label:<48} (no samples)");
    } else {
        println!(
            "{label:<48} time: {:>12.1} ns/iter  ({} iters)",
            b.best_ns, b.iters
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&self.name, &id.id, &b);
    }

    /// Benchmarks a closure under a plain name.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(&self.name, name, &b);
    }

    /// Ends the group (formatting no-op).
    pub fn finish(self) {}
}

/// The benchmark driver handed to each target function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _c: self,
        }
    }

    /// Benchmarks a closure under a plain name.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report("", name, &b);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }
}
