//! Offline stand-in for `crossbeam`.
//!
//! Only the `channel` module's unbounded MPSC surface is provided,
//! backed by `std::sync::mpsc`. The one in-tree user
//! (`examples/live_threads.rs`) moves each `Receiver` into its own
//! thread, which std's channels support fine.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, Sender};
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// An unbounded channel (std's asynchronous channel).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn roundtrip_and_timeout() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
