//! No-op `#[derive(Serialize, Deserialize)]` for the offline serde
//! stand-in. The workspace annotates types with serde derives for
//! future interoperability, but nothing in-tree bounds on the traits
//! (the one real serialization site, `simnet::trace`, hand-rolls its
//! JSON), so the derives can expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
