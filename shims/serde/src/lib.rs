//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, and nothing in this
//! workspace actually serializes through serde (the trace JSONL writer
//! hand-rolls its encoding), so the traits are empty markers and the
//! derives expand to nothing. Types keep their `#[derive(Serialize,
//! Deserialize)]` annotations so swapping the real serde back in is a
//! one-line Cargo change.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
