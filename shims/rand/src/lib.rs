//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand`'s API it actually uses:
//! [`rngs::SmallRng`], the [`Rng`] / [`SeedableRng`] traits with
//! `gen_range` / `gen_bool` / `gen`, and [`seq::SliceRandom`] with
//! `shuffle` / `choose`. The generator is xoshiro256++ seeded via
//! splitmix64 — deterministic, fast, and good enough for simulation
//! workloads (not cryptographic).

pub mod rngs {
    /// A small, fast, non-cryptographic PRNG (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SmallRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }

        /// The core generator step.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Lower 32 bits of the next output.
        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

/// Seeding construction, matching the subset of `rand::SeedableRng` used.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::SmallRng::from_u64_seed(seed)
    }
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps a raw u64 to `[0, 1)` with 53 bits of precision.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Object-safe generator core.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::SmallRng {
    fn next_u64(&mut self) -> u64 {
        rngs::SmallRng::next_u64(self)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Ranges samplable by [`Rng::gen_range`]. Mirrors rand's two-parameter
/// shape so the output type can drive integer-literal inference.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }

    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling/choosing (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
    }
}
