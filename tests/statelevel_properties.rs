//! Property tests for the state-level alternatives: the paper's central
//! claim is that these techniques are *insensitive to delivery order* —
//! so we test exactly that, under arbitrary permutations.

use clocks::versions::{ObjectId, Version};
use proptest::prelude::*;
use simnet::time::SimTime;
use statelevel::cache::OrderPreservingCache;
use statelevel::prescriptive::{PrescriptiveInbox, PrescriptivePolicy};
use txn::kv::MvccStore;
use txn::lock::TxId;

proptest! {
    /// The order-preserving cache presents every item exactly once and
    /// never a response before its inquiry — for ANY arrival order.
    #[test]
    fn cache_is_permutation_invariant(
        n_roots in 1usize..5,
        n_children in 0usize..10,
        order in Just(()).prop_perturb(|_, mut rng| {
            let mut v: Vec<usize> = (0..15).collect();
            for i in (1..v.len()).rev() {
                let j = (rng.next_u32() as usize) % (i + 1);
                v.swap(i, j);
            }
            v
        }),
    ) {
        // Build items: roots 0..n_roots, children reference a root.
        let total = n_roots + n_children;
        let mut items: Vec<(u64, Option<u64>)> = Vec::new();
        for r in 0..n_roots {
            items.push((r as u64, None));
        }
        for c in 0..n_children {
            items.push(((n_roots + c) as u64, Some((c % n_roots) as u64)));
        }
        let mut cache = OrderPreservingCache::new();
        let mut presented = Vec::new();
        for &idx in order.iter().filter(|&&i| i < total) {
            let (id, dep) = items[idx];
            presented.extend(cache.insert(ObjectId(id), dep.map(ObjectId), id));
        }
        // Feed any items the permutation missed (order is a fixed 0..15
        // permutation; items beyond `total` don't exist).
        for (i, &(id, dep)) in items.iter().enumerate() {
            if !order.contains(&i) {
                presented.extend(cache.insert(ObjectId(id), dep.map(ObjectId), id));
            }
        }
        prop_assert_eq!(presented.len(), total, "everything presented once");
        // Children always after their parent.
        for (pos, id) in presented.iter().enumerate() {
            if let Some((_, Some(dep))) = items.iter().find(|&&(i, _)| i == id.0) {
                let parent_pos = presented
                    .iter()
                    .position(|p| p.0 == *dep)
                    .expect("parent presented");
                prop_assert!(parent_pos < pos, "child before parent");
            }
        }
    }

    /// The in-order prescriptive inbox releases versions 1..=n in order
    /// for any arrival permutation, and the latest-wins inbox always ends
    /// at the maximum version.
    #[test]
    fn inboxes_are_permutation_invariant(
        versions in Just((1u64..=10).collect::<Vec<_>>()).prop_shuffle()
    ) {
        let obj = ObjectId(1);
        let mut in_order = PrescriptiveInbox::new(PrescriptivePolicy::InOrder);
        let mut latest = PrescriptiveInbox::new(PrescriptivePolicy::LatestWins);
        let mut released = Vec::new();
        for (i, &v) in versions.iter().enumerate() {
            let now = SimTime::from_millis(i as u64);
            released.extend(
                in_order
                    .offer(obj, Version(v), v, now)
                    .into_iter()
                    .map(|r| r.version.0),
            );
            latest.offer(obj, Version(v), v, now);
        }
        prop_assert_eq!(released, (1u64..=10).collect::<Vec<_>>());
        prop_assert_eq!(latest.delivered_version(obj), Version(10));
    }

    /// MVCC snapshot reads are stable: adding later commits never changes
    /// what an earlier stamp observes.
    #[test]
    fn mvcc_snapshots_are_stable(
        commits in proptest::collection::vec((0u64..4, 0i64..100), 1..12)
    ) {
        use clocks::lamport::TotalStamp;
        let mut kv = MvccStore::new();
        let mut observations: Vec<(u64, u64, Option<i64>)> = Vec::new();
        for (i, &(key, val)) in commits.iter().enumerate() {
            let tx = TxId(i as u64 + 1);
            let stamp = TotalStamp { time: (i as u64 + 1) * 10, node: 0 };
            kv.stage(tx, key, val);
            kv.commit(tx, stamp);
            // Record what every earlier stamp sees right now.
            for t in 0..=i as u64 + 1 {
                for k in 0..4u64 {
                    observations.push((
                        t * 10 + 5,
                        k,
                        kv.read_committed(k, TotalStamp { time: t * 10 + 5, node: 9 }),
                    ));
                }
            }
        }
        // Re-check every recorded observation against the final store.
        for (t, k, expected) in observations {
            let now = kv.read_committed(k, TotalStamp { time: t, node: 9 });
            prop_assert_eq!(now, expected, "snapshot at t={} key={} changed", t, k);
        }
    }
}
