//! Property-based integration tests: ordering invariants hold for random
//! workloads, group sizes, loss rates and seeds.

use catocs::endpoint::Discipline;
use catocs::group::{CausalDiscipline, GroupConfig};
use catocs::harness::{spawn_group, GroupApp, GroupCtx, GroupNode};
use catocs::wire::{Delivery, Wire};
use clocks::vector::VectorClock;
use proptest::prelude::*;
use simnet::net::NetConfig;
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};

/// Payload carries the sender's causal history (its delivered clock at
/// send time) so receivers can verify happens-before directly.
#[derive(Clone, Debug)]
struct Stamped {
    vt_at_send: VectorClock,
}

struct Verifier {
    me: usize,
    n: usize,
    remaining: u32,
    delivered_clock: VectorClock,
    violations: u32,
    delivered: u32,
    /// Full delivery sequence, for cross-discipline comparison.
    order: Vec<(usize, u64)>,
}

impl GroupApp<Stamped> for Verifier {
    fn on_tick(&mut self, _ctx: &mut GroupCtx<'_>) -> Vec<Stamped> {
        if self.remaining == 0 {
            return Vec::new();
        }
        self.remaining -= 1;
        // Snapshot our delivered state; the send itself is accounted by
        // the endpoint's own clock.
        let mut vt = self.delivered_clock.clone();
        vt.tick(self.me);
        vec![Stamped { vt_at_send: vt }]
    }

    fn on_deliver(&mut self, _ctx: &mut GroupCtx<'_>, d: &Delivery<Stamped>) -> Vec<Stamped> {
        // Causal safety: everything the sender had delivered when it sent
        // this message must already be delivered here (for components
        // other than the sender's own entry, which counts the message
        // itself).
        for k in 0..self.n {
            let needed = if k == d.id.sender {
                d.payload.vt_at_send.get(k).saturating_sub(1)
            } else {
                d.payload.vt_at_send.get(k)
            };
            // Our app-level clock counts deliveries per sender.
            if self.delivered_clock.get(k) < needed {
                self.violations += 1;
            }
        }
        let seen = self.delivered_clock.get(d.id.sender);
        self.delivered_clock.set(d.id.sender, seen.max(d.id.seq));
        self.delivered += 1;
        self.order.push((d.id.sender, d.id.seq));
        Vec::new()
    }
}

fn run_verified(seed: u64, n: usize, msgs: u32, loss: f64) -> (u32, u32, u32) {
    run_verified_d(seed, n, msgs, loss, CausalDiscipline::Cbcast).0
}

/// Per-process delivery sequences, as `(sender, seq)` in delivery order.
type DeliveryOrders = Vec<Vec<(usize, u64)>>;

/// Runs the verified causal workload in the given causal discipline.
/// Returns `((violations, delivered, expected), per-process delivery
/// sequences)`.
fn run_verified_d(
    seed: u64,
    n: usize,
    msgs: u32,
    loss: f64,
    discipline: CausalDiscipline,
) -> ((u32, u32, u32), DeliveryOrders) {
    let mut sim = SimBuilder::new(seed)
        .net(NetConfig::lossy_lan(loss))
        .build::<Wire<Stamped>>();
    let members = spawn_group(
        &mut sim,
        n,
        Discipline::Causal,
        GroupConfig {
            discipline,
            ..GroupConfig::default()
        },
        Some(SimDuration::from_millis(9)),
        |me| Verifier {
            me,
            n,
            remaining: msgs,
            delivered_clock: VectorClock::new(n),
            violations: 0,
            delivered: 0,
            order: Vec::new(),
        },
    );
    sim.run_until(SimTime::from_secs(8));
    let mut violations = 0;
    let mut delivered = 0;
    let mut orders = Vec::new();
    for &m in &members {
        let node = sim
            .process::<GroupNode<Stamped, Verifier>>(m)
            .expect("node");
        violations += node.app().violations;
        delivered += node.app().delivered;
        orders.push(node.app().order.clone());
    }
    ((violations, delivered, n as u32 * msgs * n as u32), orders)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Causal delivery is never violated, for any seed / size / loss.
    #[test]
    fn causal_safety_under_chaos(
        seed in 0u64..10_000,
        n in 2usize..7,
        msgs in 1u32..8,
        loss in 0.0f64..0.2,
    ) {
        let (violations, _delivered, _) = run_verified(seed, n, msgs, loss);
        prop_assert_eq!(violations, 0, "happens-before violated");
    }

    /// Liveness: with NACK recovery, everything sent is delivered
    /// everywhere (given enough simulated time).
    #[test]
    fn eventual_delivery_under_loss(
        seed in 0u64..10_000,
        n in 2usize..6,
        msgs in 1u32..6,
    ) {
        let (_violations, delivered, expected) = run_verified(seed, n, msgs, 0.15);
        prop_assert_eq!(delivered, expected, "messages lost forever");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The constant-metadata discipline (pccast) upholds the same causal
    /// safety contract as cbcast, for any seed / size / loss — checked by
    /// the same app-level happens-before verifier, which knows nothing
    /// about either algorithm.
    #[test]
    fn pccast_causal_safety_under_chaos(
        seed in 0u64..10_000,
        n in 2usize..7,
        msgs in 1u32..8,
        loss in 0.0f64..0.2,
    ) {
        let ((violations, _, _), _) =
            run_verified_d(seed, n, msgs, loss, CausalDiscipline::Pccast);
        prop_assert_eq!(violations, 0, "happens-before violated (pccast)");
    }

    /// Delivery-order equivalence: for the same seeded workload, cbcast
    /// and pccast deliver the same messages at every process with
    /// identical per-sender delivery sequences (the per-sender FIFO
    /// projections must agree exactly — the two algorithms may interleave
    /// concurrent senders differently, which causal order permits).
    #[test]
    fn pccast_delivery_prefixes_match_cbcast(
        seed in 0u64..10_000,
        n in 2usize..6,
        msgs in 1u32..6,
        loss in 0.0f64..0.15,
    ) {
        let ((cv, cd, expected), corders) =
            run_verified_d(seed, n, msgs, loss, CausalDiscipline::Cbcast);
        let ((pv, pd, _), porders) =
            run_verified_d(seed, n, msgs, loss, CausalDiscipline::Pccast);
        prop_assert_eq!(cv, 0);
        prop_assert_eq!(pv, 0);
        prop_assert_eq!(cd, expected, "cbcast lost messages");
        prop_assert_eq!(pd, expected, "pccast lost messages");
        for (who, (c, p)) in corders.iter().zip(porders.iter()).enumerate() {
            for sender in 0..n {
                let cs: Vec<u64> =
                    c.iter().filter(|(s, _)| *s == sender).map(|(_, q)| *q).collect();
                let ps: Vec<u64> =
                    p.iter().filter(|(s, _)| *s == sender).map(|(_, q)| *q).collect();
                prop_assert_eq!(
                    &cs, &ps,
                    "P{} diverges from cbcast on sender {}'s prefix", who, sender
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Total order agreement for random workloads.
    #[test]
    fn abcast_agreement(seed in 0u64..10_000, n in 2usize..6, msgs in 1u32..6) {
        struct Recorder {
            remaining: u32,
            order: Vec<(usize, u64)>,
        }
        impl GroupApp<u32> for Recorder {
            fn on_tick(&mut self, ctx: &mut GroupCtx<'_>) -> Vec<u32> {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    vec![ctx.me as u32]
                } else {
                    Vec::new()
                }
            }
            fn on_deliver(&mut self, _c: &mut GroupCtx<'_>, d: &Delivery<u32>) -> Vec<u32> {
                self.order.push((d.id.sender, d.id.seq));
                Vec::new()
            }
        }
        let mut sim = SimBuilder::new(seed)
            .net(NetConfig::lossy_lan(0.1))
            .build::<Wire<u32>>();
        let members = spawn_group(
            &mut sim,
            n,
            Discipline::Total { sequencer: 0 },
            GroupConfig::default(),
            Some(SimDuration::from_millis(10)),
            |_| Recorder { remaining: msgs, order: Vec::new() },
        );
        sim.run_until(SimTime::from_secs(8));
        let reference = sim
            .process::<GroupNode<u32, Recorder>>(members[0])
            .unwrap()
            .app()
            .order
            .clone();
        prop_assert_eq!(reference.len() as u32, n as u32 * msgs);
        for &m in &members[1..] {
            let order = &sim.process::<GroupNode<u32, Recorder>>(m).unwrap().app().order;
            prop_assert_eq!(order, &reference, "divergent total order");
        }
    }
}
