//! Cross-crate integration: the full stack (simnet → catocs →
//! application scenarios) behaves deterministically and delivers its
//! guarantees end to end.

use catocs::endpoint::Discipline;
use catocs::group::GroupConfig;
use catocs::harness::{spawn_group, GroupApp, GroupCtx, GroupNode};
use catocs::wire::{Delivery, Wire};
use simnet::net::NetConfig;
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};

struct Chatter {
    remaining: u32,
    seen: Vec<(usize, u64)>,
}

impl GroupApp<u32> for Chatter {
    fn on_tick(&mut self, ctx: &mut GroupCtx<'_>) -> Vec<u32> {
        if self.remaining > 0 {
            self.remaining -= 1;
            vec![ctx.me as u32]
        } else {
            Vec::new()
        }
    }
    fn on_deliver(&mut self, _ctx: &mut GroupCtx<'_>, d: &Delivery<u32>) -> Vec<u32> {
        self.seen.push((d.id.sender, d.id.seq));
        Vec::new()
    }
}

fn run_group(seed: u64, n: usize, d: Discipline, loss: f64) -> Vec<Vec<(usize, u64)>> {
    let mut sim = SimBuilder::new(seed)
        .net(NetConfig::lossy_lan(loss))
        .build::<Wire<u32>>();
    let members = spawn_group(
        &mut sim,
        n,
        d,
        GroupConfig::default(),
        Some(SimDuration::from_millis(12)),
        |_| Chatter {
            remaining: 8,
            seen: Vec::new(),
        },
    );
    sim.run_until(SimTime::from_secs(6));
    members
        .iter()
        .map(|&m| {
            sim.process::<GroupNode<u32, Chatter>>(m)
                .expect("node")
                .app()
                .seen
                .clone()
        })
        .collect()
}

#[test]
fn same_seed_same_history() {
    let a = run_group(99, 5, Discipline::Causal, 0.08);
    let b = run_group(99, 5, Discipline::Causal, 0.08);
    assert_eq!(a, b, "simulation must be fully deterministic");
}

#[test]
fn different_seed_different_history() {
    let a = run_group(99, 5, Discipline::Causal, 0.08);
    let b = run_group(100, 5, Discipline::Causal, 0.08);
    assert_ne!(a, b);
}

#[test]
fn everyone_delivers_everything_despite_loss() {
    for d in [
        Discipline::Fifo,
        Discipline::Causal,
        Discipline::Total { sequencer: 0 },
    ] {
        let histories = run_group(7, 5, d, 0.1);
        for (i, h) in histories.iter().enumerate() {
            assert_eq!(h.len(), 40, "member {i} under {d:?} missed messages");
        }
    }
}

#[test]
fn causal_implies_per_sender_fifo() {
    let histories = run_group(3, 6, Discipline::Causal, 0.1);
    for h in &histories {
        let mut last = std::collections::HashMap::new();
        for &(s, q) in h {
            let e = last.entry(s).or_insert(0u64);
            assert_eq!(q, *e + 1, "sender {s} out of order");
            *e = q;
        }
    }
}

#[test]
fn total_order_is_identical_everywhere() {
    for seed in [1u64, 5, 9] {
        let histories = run_group(seed, 5, Discipline::Total { sequencer: 0 }, 0.05);
        for h in &histories[1..] {
            assert_eq!(h, &histories[0], "seed {seed}");
        }
    }
}

#[test]
fn token_total_order_matches_too() {
    // 5% loss: reliable token passing (TokenAck + retransmit) keeps the
    // ring alive.
    let histories = run_group(4, 4, Discipline::TotalToken, 0.05);
    for h in &histories[1..] {
        assert_eq!(h, &histories[0]);
    }
    assert_eq!(histories[0].len(), 32);
}

#[test]
fn trace_digest_is_reproducible() {
    let digest = |seed: u64| {
        let mut sim = SimBuilder::new(seed)
            .net(NetConfig::lossy_lan(0.1))
            .trace()
            .build::<Wire<u32>>();
        spawn_group(
            &mut sim,
            3,
            Discipline::Causal,
            GroupConfig::default(),
            Some(SimDuration::from_millis(10)),
            |_| Chatter {
                remaining: 5,
                seen: Vec::new(),
            },
        );
        sim.run_until(SimTime::from_secs(3));
        sim.trace().digest()
    };
    assert_eq!(digest(42), digest(42));
    assert_ne!(digest(42), digest(43));
}

#[test]
fn umbrella_crate_reexports_work() {
    // The root library exposes every subsystem.
    use catocs_repro::{clocks, statelevel, txn};
    let mut vc = clocks::vector::VectorClock::new(3);
    vc.tick(0);
    assert_eq!(vc.get(0), 1);
    let mut store: statelevel::versioned::VersionedStore<u8> =
        statelevel::versioned::VersionedStore::new();
    store.update_local(clocks::versions::ObjectId(1), 7);
    let mut lm = txn::lock::LockManager::new();
    assert_eq!(
        lm.acquire(txn::lock::TxId(1), 1, txn::lock::LockMode::Shared),
        txn::lock::LockOutcome::Granted
    );
}
