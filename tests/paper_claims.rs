//! The paper's four limitations, asserted end to end through the public
//! experiment API. Each test states the claim it reproduces.

use bench::experiments as ex;

/// Limitation 1 — "can't say for sure": hidden channels defeat CATOCS;
/// state-level version numbers do not care about delivery order.
#[test]
fn limitation_1_hidden_channels() {
    let t = ex::f2::run(30);
    assert!(t.get_f64(0, 2) > 0.0, "misordering occurs");
    assert!(t.get_f64(0, 3) > 0.0, "naive state corrupted");
    assert_eq!(t.get_f64(1, 3), 0.0, "versioned state never corrupted");
}

/// Limitation 1 again, external channel flavor (Figure 3), under causal
/// AND total order.
#[test]
fn limitation_1_external_channels() {
    let t = ex::f3::run(30);
    for row in 0..2 {
        assert!(t.get_f64(row, 2) > 0.0);
        assert_eq!(t.get_f64(row, 4), 0.0, "rt-stamp belief always right");
    }
}

/// Limitation 3 — "can't say the whole story": semantic constraints
/// stronger than happens-before (Figure 4) survive every discipline.
#[test]
fn limitation_3_semantic_constraints() {
    let t = ex::f4::run(3);
    for row in 0..3 {
        assert!(
            t.get_f64(row, 2) > 0.0,
            "false crossings under discipline row {row}"
        );
    }
    for row in 3..5 {
        assert_eq!(t.get_f64(row, 2), 0.0, "dependency field fixes it");
    }
}

/// Limitation 2 — "can't say together": a participant can refuse a
/// prepare; 2PC aborts everywhere; no partial application. And the §2
/// durability gap: k=0 cbcast loses updates on sender failure.
#[test]
fn limitation_2_and_durability() {
    let crash = ex::t8::run_cbcast_path(1, 0, Some(8));
    assert!(crash.lost > 0, "asynchronous cbcast loses updates");
    let tpc = ex::t8::run_twopc_path(1, Some(8));
    assert_eq!(tpc.lost, 0, "2PC replicas stay consistent");
}

/// Limitation 4 — "can't say efficiently": per-message overhead grows
/// with N; false causality delays independent messages.
#[test]
fn limitation_4_efficiency() {
    let t = ex::t7::run(&[4, 64]);
    let small = t.get_f64(0, 2);
    let large = t.get_f64(1, 2);
    assert!(large > small * 5.0, "vt header grows linearly with N");

    let fc = ex::t6::measure(3, 8);
    assert!(fc.held > 0);
    assert!(
        fc.falsely_held * 2 >= fc.held,
        "most holdback is false causality"
    );
}

/// §5 — buffering grows superlinearly in aggregate.
#[test]
fn section_5_scalability() {
    let small = ex::t5::measure(1, 4);
    let large = ex::t5::measure(1, 16);
    // System-wide buffered messages = N × per-node mean.
    let sys_small = small.buf_peak_mean * 4.0;
    let sys_large = large.buf_peak_mean * 16.0;
    assert!(
        sys_large > 4.0 * sys_small,
        "system buffering superlinear: {sys_small} -> {sys_large}"
    );
    assert!(large.arcs_per_msg > small.arcs_per_msg);
}

/// §4.2 / appendix — deadlock detection needs no CATOCS and costs less.
#[test]
fn deadlock_detection_without_catocs() {
    let t = ex::t9::run(&[6]);
    let vr = t.get_f64(0, 2);
    let st = t.get_f64(1, 2);
    assert!(st < vr, "reports {st} messages vs causal {vr}");
}

/// Appendix 9.1 — drilling traffic shapes.
#[test]
fn drilling_traffic_shapes() {
    let t = ex::t10::run(&[2, 8]);
    let central_growth = t.get_f64(1, 1) / t.get_f64(0, 1);
    let dist_growth = t.get_f64(1, 3) / t.get_f64(0, 3);
    assert!(central_growth < 1.5);
    assert!(dist_growth > 3.0);
}

/// §4.2 — stable predicates on a consistent cut over plain channels.
#[test]
fn global_predicates_on_plain_channels() {
    let healthy = ex::t14::run_snapshot(9, 5, false, 600);
    assert_eq!(healthy.tokens_found, 1);
    assert_eq!(healthy.terminated, Some(true));
    let lost = ex::t14::run_snapshot(9, 5, true, 600);
    assert_eq!(lost.tokens_found, 0);
}
