//! # catocs-repro
//!
//! A full reproduction of Cheriton & Skeen, *Understanding the Limitations
//! of Causally and Totally Ordered Communication* (SOSP 1993).
//!
//! This umbrella crate re-exports every subsystem in the workspace so the
//! examples and integration tests can use a single import root:
//!
//! - [`simnet`] — deterministic discrete-event network simulator.
//! - [`clocks`] — Lamport / vector / matrix / synchronized real-time clocks.
//! - [`catocs`] — the ISIS-style CATOCS toolkit the paper critiques.
//! - [`statelevel`] — the state-level alternatives the paper advocates.
//! - [`txn`] — the transactional substrate (2PL, 2PC, OCC, replication).
//! - [`apps`] — the paper's application scenarios (trading, shop floor,
//!   fire monitor, netnews, drilling, RPC deadlock, oven monitoring).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! per-figure reproduction record.

pub use apps;
pub use catocs;
pub use clocks;
pub use simnet;
pub use statelevel;
pub use txn;
